//! Exchange-correlation functionals and MatMul-style XC matrix assembly.
//!
//! Implements the closed-shell (restricted) forms of Slater exchange, VWN5
//! correlation, Becke-88 gradient-corrected exchange, and Lee-Yang-Parr
//! correlation (Miehlich gradient-only form), composed into B3LYP:
//!
//! `E_xc = 0.20 E_x^HF + 0.08 E_x^Slater + 0.72 E_x^B88
//!        + 0.19 E_c^VWN5 + 0.81 E_c^LYP`.
//!
//! Potentials (`∂e/∂ρ`, `∂e/∂γ` with `γ = |∇ρ|²`) are obtained by accurate
//! central differences of the energy density — one code path for every
//! functional, immune to hand-derived-derivative bugs.
//!
//! The XC *matrix* is assembled as the paper prescribes (triple-product
//! projection, §1): `V_xc = Φᵀ diag(w·vρ) Φ + 2 Σ_d [Φᵀ diag(w·vγ·∂_dρ) ∂_dΦ
//! + h.c.]` — three dense GEMMs over the grid.

use crate::grid::MolecularGrid;
use mako_chem::Shell;
use mako_linalg::{gemm_tiled, Matrix, Transpose};

const PI: f64 = std::f64::consts::PI;

/// Which LDA/GGA pieces a functional mixes (with weights), plus the exact-
/// exchange fraction applied to the K matrix by the SCF driver.
#[derive(Debug, Clone)]
pub struct XcFunctional {
    /// Display name.
    pub name: &'static str,
    /// Fraction of Hartree-Fock (exact) exchange.
    pub hf_exchange: f64,
    /// (weight, component) pairs.
    components: Vec<(f64, Component)>,
}

#[derive(Debug, Clone, Copy)]
enum Component {
    SlaterX,
    Vwn5C,
    B88X,
    LypC,
}

/// The B3LYP hybrid.
pub fn b3lyp() -> XcFunctional {
    XcFunctional {
        name: "B3LYP",
        hf_exchange: 0.20,
        components: vec![
            (0.08, Component::SlaterX),
            (0.72, Component::B88X),
            (0.19, Component::Vwn5C),
            (0.81, Component::LypC),
        ],
    }
}

/// Pure LDA (SVWN5) — used by tests and ablations.
pub fn svwn() -> XcFunctional {
    XcFunctional {
        name: "SVWN5",
        hf_exchange: 0.0,
        components: vec![(1.0, Component::SlaterX), (1.0, Component::Vwn5C)],
    }
}

/// Pure Hartree-Fock expressed as an "XC functional" (100% exact exchange,
/// no density functional parts).
pub fn hartree_fock() -> XcFunctional {
    XcFunctional {
        name: "HF",
        hf_exchange: 1.0,
        components: vec![],
    }
}

impl XcFunctional {
    /// Energy density per volume, `e(ρ, γ)` with `γ = |∇ρ|²` (closed
    /// shell). Zero below the density floor.
    pub fn energy_density(&self, rho: f64, gamma: f64) -> f64 {
        if rho < 1e-12 {
            return 0.0;
        }
        let gamma = gamma.max(0.0);
        self.components
            .iter()
            .map(|&(w, c)| {
                w * match c {
                    Component::SlaterX => slater_x(rho),
                    Component::Vwn5C => vwn5_c(rho),
                    Component::B88X => b88_x(rho, gamma),
                    Component::LypC => lyp_c(rho, gamma),
                }
            })
            .sum()
    }

    /// `∂e/∂ρ` at fixed γ (central difference).
    pub fn vrho(&self, rho: f64, gamma: f64) -> f64 {
        if rho < 1e-12 {
            return 0.0;
        }
        let h = (1e-6 * rho).max(1e-14);
        (self.energy_density(rho + h, gamma) - self.energy_density(rho - h, gamma)) / (2.0 * h)
    }

    /// `∂e/∂γ` at fixed ρ (central difference).
    pub fn vgamma(&self, rho: f64, gamma: f64) -> f64 {
        if rho < 1e-12 {
            return 0.0;
        }
        let h = (1e-6 * gamma).max(1e-14);
        let up = self.energy_density(rho, gamma + h);
        let lo = self.energy_density(rho, (gamma - h).max(0.0));
        let span = gamma + h - (gamma - h).max(0.0);
        (up - lo) / span
    }

    /// True if any component consumes the density gradient.
    pub fn is_gga(&self) -> bool {
        self.components
            .iter()
            .any(|&(_, c)| matches!(c, Component::B88X | Component::LypC))
    }
}

/// Slater (LDA) exchange energy density: `−C_x ρ^{4/3}`.
fn slater_x(rho: f64) -> f64 {
    let cx = 0.75 * (3.0 / PI).powf(1.0 / 3.0);
    -cx * rho.powf(4.0 / 3.0)
}

/// VWN5 correlation energy density (paramagnetic fit of Vosko, Wilk &
/// Nusair 1980): `ρ · ε_c(r_s)`.
fn vwn5_c(rho: f64) -> f64 {
    const A: f64 = 0.0310907; // = 0.0621814 / 2 (Rydberg→Hartree)
    const X0: f64 = -0.10498;
    const B: f64 = 3.72744;
    const C: f64 = 12.9352;
    let rs = (3.0 / (4.0 * PI * rho)).powf(1.0 / 3.0);
    let x = rs.sqrt();
    let xx = |t: f64| t * t + B * t + C;
    let q = (4.0 * C - B * B).sqrt();
    let eps = A
        * ((x * x / xx(x)).ln() + 2.0 * B / q * (q / (2.0 * x + B)).atan()
            - B * X0 / xx(X0)
                * (((x - X0) * (x - X0) / xx(x)).ln()
                    + 2.0 * (B + 2.0 * X0) / q * (q / (2.0 * x + B)).atan()));
    rho * eps
}

/// Becke-88 exchange energy density (closed shell): spin-resolved LDA plus
/// the gradient correction `−β ρσ^{4/3} xσ²/(1 + 6βxσ asinh(xσ))` with
/// `xσ = |∇ρσ|/ρσ^{4/3}`.
fn b88_x(rho: f64, gamma: f64) -> f64 {
    const BETA: f64 = 0.0042;
    let rho_s = 0.5 * rho;
    let grad_s = (gamma.max(0.0)).sqrt() * 0.5;
    let r43 = rho_s.powf(4.0 / 3.0);
    let x = if r43 > 0.0 { grad_s / r43 } else { 0.0 };
    let lda_s = -1.5 * (3.0 / (4.0 * PI)).powf(1.0 / 3.0) * r43;
    let corr = -BETA * r43 * x * x / (1.0 + 6.0 * BETA * x * x.asinh());
    2.0 * (lda_s + corr)
}

/// Lee–Yang–Parr correlation energy density in the Miehlich (gradient-only)
/// form, specialized to the closed shell (`ρα = ρβ = ρ/2`,
/// `γαα = γββ = γαβ = γ/4`).
fn lyp_c(rho: f64, gamma: f64) -> f64 {
    const AA: f64 = 0.04918;
    const BB: f64 = 0.132;
    const CC: f64 = 0.2533;
    const DD: f64 = 0.349;
    let cf = 0.3 * (3.0 * PI * PI).powf(2.0 / 3.0);

    let ra = 0.5 * rho;
    let rb = 0.5 * rho;
    let gaa = 0.25 * gamma;
    let gbb = 0.25 * gamma;
    let gab = 0.25 * gamma;
    let gtot = gaa + gbb + 2.0 * gab; // = |∇ρ|²

    let rho_m13 = rho.powf(-1.0 / 3.0);
    let denom = 1.0 + DD * rho_m13;
    let omega = (-CC * rho_m13).exp() / denom * rho.powf(-11.0 / 3.0);
    let delta = CC * rho_m13 + DD * rho_m13 / denom;

    let first = -AA * 4.0 / denom * ra * rb / rho;
    let bracket = ra * rb
        * (2f64.powf(11.0 / 3.0) * cf * (ra.powf(8.0 / 3.0) + rb.powf(8.0 / 3.0))
            + (47.0 / 18.0 - 7.0 * delta / 18.0) * gtot
            - (2.5 - delta / 18.0) * (gaa + gbb)
            - (delta - 11.0) / 9.0 * (ra * gaa + rb * gbb) / rho)
        - 2.0 / 3.0 * rho * rho * gtot
        + (2.0 / 3.0 * rho * rho - ra * ra) * gbb
        + (2.0 / 3.0 * rho * rho - rb * rb) * gaa;
    first - AA * BB * omega * bracket
}

/// AO values and Cartesian gradients on a batch of grid points:
/// `phi` is `npts × nao`, `grad[d]` likewise for d ∈ {x, y, z}.
pub struct AoOnGrid {
    /// AO values.
    pub phi: Matrix,
    /// AO gradients per Cartesian direction.
    pub grad: [Matrix; 3],
}

/// Evaluate every AO (and its gradient) of `shells` on the grid points.
pub fn evaluate_aos(shells: &[Shell], grid: &MolecularGrid) -> AoOnGrid {
    use mako_chem::cart::cart_components;
    use mako_chem::harmonics::cart_to_sph;

    let layout = mako_chem::AoLayout::new(shells);
    let npts = grid.len();
    let mut phi = Matrix::zeros(npts, layout.nao);
    let mut gx = Matrix::zeros(npts, layout.nao);
    let mut gy = Matrix::zeros(npts, layout.nao);
    let mut gz = Matrix::zeros(npts, layout.nao);

    for (si, shell) in shells.iter().enumerate() {
        let c2s = cart_to_sph(shell.l);
        let comps = cart_components(shell.l);
        let off = layout.shell_offsets[si];
        for (g, point) in grid.points.iter().enumerate() {
            let dx = point.position[0] - shell.center[0];
            let dy = point.position[1] - shell.center[1];
            let dz = point.position[2] - shell.center[2];
            let r2 = dx * dx + dy * dy + dz * dz;
            // Radial part and its derivative factor.
            let mut rad = 0.0;
            let mut drad = 0.0; // d(rad)/d(r²)
            for (e, c) in shell.exps.iter().zip(&shell.coefs) {
                let ex = (-e * r2).exp() * c;
                rad += ex;
                drad += -e * ex;
            }
            if rad.abs() + drad.abs() < 1e-16 {
                continue;
            }
            // Monomials and their derivatives.
            for (mi, m) in (0..c2s.rows()).map(|m| (m, m)) {
                let _ = m;
                let mut val = 0.0;
                let mut dvx = 0.0;
                let mut dvy = 0.0;
                let mut dvz = 0.0;
                for (ci, &(a, b, c)) in comps.iter().enumerate() {
                    let coef = c2s[(mi, ci)];
                    if coef == 0.0 {
                        continue;
                    }
                    let pa = powi(dx, a);
                    let pb = powi(dy, b);
                    let pc = powi(dz, c);
                    let mono = pa * pb * pc;
                    val += coef * mono;
                    // ∂/∂x of (x^a y^b z^c · rad) =
                    //   (a x^{a−1} y^b z^c) rad + mono · 2x · drad
                    dvx += coef
                        * ((if a > 0 { a as f64 * powi(dx, a - 1) * pb * pc } else { 0.0 }) * rad
                            + mono * 2.0 * dx * drad);
                    dvy += coef
                        * ((if b > 0 { b as f64 * pa * powi(dy, b - 1) * pc } else { 0.0 }) * rad
                            + mono * 2.0 * dy * drad);
                    dvz += coef
                        * ((if c > 0 { c as f64 * pa * pb * powi(dz, c - 1) } else { 0.0 }) * rad
                            + mono * 2.0 * dz * drad);
                }
                phi[(g, off + mi)] = val * rad;
                gx[(g, off + mi)] = dvx;
                gy[(g, off + mi)] = dvy;
                gz[(g, off + mi)] = dvz;
            }
        }
    }
    AoOnGrid {
        phi,
        grad: [gx, gy, gz],
    }
}

#[inline]
fn powi(x: f64, n: usize) -> f64 {
    let mut acc = 1.0;
    for _ in 0..n {
        acc *= x;
    }
    acc
}

/// Result of one XC evaluation on the grid.
pub struct XcResult {
    /// Exchange-correlation energy (DFT part only; exact exchange is added
    /// by the SCF driver through K).
    pub energy: f64,
    /// The XC contribution to the Fock matrix.
    pub matrix: Matrix,
    /// Integrated electron count (grid-quality diagnostic).
    pub n_electrons: f64,
}

/// Evaluate `E_xc[ρ]` and `V_xc` for density matrix `d` via the
/// triple-product MatMul assembly.
pub fn evaluate_xc(
    functional: &XcFunctional,
    aos: &AoOnGrid,
    grid: &MolecularGrid,
    d: &Matrix,
) -> XcResult {
    let npts = grid.len();
    let nao = aos.phi.cols();

    // ρ(g) and ∇ρ(g) via Φ·D — the first MatMul of the projection.
    let mut phi_d = Matrix::zeros(npts, nao);
    gemm_tiled(1.0, &aos.phi, Transpose::No, d, Transpose::No, 0.0, &mut phi_d);

    let mut rho = vec![0.0f64; npts];
    let mut grad_rho = vec![[0.0f64; 3]; npts];
    for g in 0..npts {
        let pd = phi_d.row(g);
        let p = aos.phi.row(g);
        let mut r = 0.0;
        for (a, b) in pd.iter().zip(p) {
            r += a * b;
        }
        // Density matrix convention: D = Σ_occ C Cᵀ (per spin), total
        // density ρ = 2 Σ D φφ.
        rho[g] = 2.0 * r;
        for (dim, gm) in aos.grad.iter().enumerate() {
            let gr = gm.row(g);
            let mut s = 0.0;
            for (a, b) in pd.iter().zip(gr) {
                s += a * b;
            }
            grad_rho[g][dim] = 4.0 * s; // 2 (from D) × 2 (product rule)
        }
    }

    let mut energy = 0.0;
    let mut n_el = 0.0;
    let mut wv = vec![0.0f64; npts];
    let mut wg = vec![[0.0f64; 3]; npts];
    for g in 0..npts {
        let w = grid.points[g].weight;
        let r = rho[g];
        let gamma = grad_rho[g][0] * grad_rho[g][0]
            + grad_rho[g][1] * grad_rho[g][1]
            + grad_rho[g][2] * grad_rho[g][2];
        energy += w * functional.energy_density(r, gamma);
        n_el += w * r;
        wv[g] = w * functional.vrho(r, gamma);
        let vg = functional.vgamma(r, gamma);
        for dim in 0..3 {
            wg[g][dim] = 2.0 * w * vg * grad_rho[g][dim];
        }
    }

    // V = Φᵀ diag(w vρ) Φ + Σ_d [Φᵀ diag(wg_d) ∂_dΦ + (∂_dΦ)ᵀ diag(wg_d) Φ].
    let mut scaled = aos.phi.clone();
    for (g, &f) in wv.iter().enumerate() {
        for x in scaled.row_mut(g) {
            *x *= f;
        }
    }
    let mut v = Matrix::zeros(nao, nao);
    gemm_tiled(1.0, &aos.phi, Transpose::Yes, &scaled, Transpose::No, 0.0, &mut v);

    if functional.is_gga() {
        for (dim, grad) in aos.grad.iter().enumerate() {
            let mut gscaled = grad.clone();
            for (g, wrow) in wg.iter().enumerate() {
                let f = wrow[dim];
                for x in gscaled.row_mut(g) {
                    *x *= f;
                }
            }
            let mut term = Matrix::zeros(nao, nao);
            gemm_tiled(1.0, &aos.phi, Transpose::Yes, &gscaled, Transpose::No, 0.0, &mut term);
            v = v.add(&term).add(&term.transpose());
        }
    }
    v.symmetrize();

    XcResult {
        energy,
        matrix: v,
        n_electrons: n_el,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::MolecularGrid;
    use mako_chem::builders;

    #[test]
    fn slater_uniform_gas_value() {
        // ε_x(r_s = 1) = −0.4582 Ha (textbook LDA constant).
        let rho = 3.0 / (4.0 * PI); // r_s = 1
        let eps = slater_x(rho) / rho;
        assert!((eps + 0.45817).abs() < 1e-4, "ε_x = {eps}");
    }

    #[test]
    fn vwn5_is_negative_and_monotone() {
        let mut prev = 0.0;
        for &rho in &[1e-3, 1e-2, 1e-1, 1.0, 10.0] {
            let eps = vwn5_c(rho) / rho;
            assert!(eps < 0.0, "correlation lowers energy");
            assert!(eps < prev, "|ε_c| grows with density");
            prev = eps;
        }
        // High-density magnitude stays modest (< 0.2 Ha per electron).
        assert!(vwn5_c(100.0) / 100.0 > -0.2);
    }

    #[test]
    fn b88_reduces_to_lda_at_zero_gradient() {
        let rho = 0.7;
        assert!((b88_x(rho, 0.0) - slater_x(rho)).abs() < 1e-12);
        // Gradient correction lowers the exchange energy density.
        assert!(b88_x(rho, 1.0) < b88_x(rho, 0.0));
    }

    #[test]
    fn hydrogenic_exchange_energies() {
        // Exact H-atom density ρ(r) = e^{−2r}/π evaluated with the
        // *restricted* (spin-unpolarized) functionals used by this closed-
        // shell code: E_x^LDA = 2^{−1/3}·(−0.2680) ≈ −0.2127 Ha (the
        // polarized textbook value scaled by the spin factor), and B88
        // corrects it toward Hartree–Fock.
        let n = 400;
        let mut e_lda = 0.0;
        let mut e_b88 = 0.0;
        let rmax = 25.0;
        let h = rmax / n as f64;
        for i in 0..n {
            let r = (i as f64 + 0.5) * h;
            let rho = (-2.0 * r).exp() / PI;
            let drho = -2.0 * rho;
            let gamma = drho * drho;
            let vol = 4.0 * PI * r * r * h;
            e_lda += vol * slater_x(rho);
            e_b88 += vol * b88_x(rho, gamma);
        }
        let expected_lda = -0.2680 * 2f64.powf(-1.0 / 3.0);
        assert!((e_lda - expected_lda).abs() < 3e-3, "LDA H exchange {e_lda}");
        assert!(e_b88 < e_lda, "B88 corrects toward HF");
        assert!((-0.29..=-0.23).contains(&e_b88), "B88 H exchange {e_b88}");
    }

    #[test]
    fn lyp_helium_like_magnitude() {
        // Hydrogenic He density (Z_eff = 27/16): LYP was fit to reproduce
        // the He correlation energy ≈ −0.042…−0.044 Ha.
        let z = 1.6875f64;
        let n = 400;
        let rmax = 12.0;
        let h = rmax / n as f64;
        let mut e_c = 0.0;
        for i in 0..n {
            let r = (i as f64 + 0.5) * h;
            let rho = 2.0 * z * z * z / PI * (-2.0 * z * r).exp();
            let drho = -2.0 * z * rho;
            let gamma = drho * drho;
            e_c += 4.0 * PI * r * r * h * lyp_c(rho, gamma);
        }
        assert!((-0.07..=-0.03).contains(&e_c), "LYP(He) = {e_c}");
    }

    #[test]
    fn numerical_potentials_match_scaling_identities() {
        // For e = −C ρ^{4/3} (Slater), vρ = (4/3) e/ρ.
        let f = XcFunctional {
            name: "S",
            hf_exchange: 0.0,
            components: vec![(1.0, Component::SlaterX)],
        };
        let rho = 0.42;
        let v = f.vrho(rho, 0.0);
        let expect = 4.0 / 3.0 * f.energy_density(rho, 0.0) / rho;
        assert!((v - expect).abs() < 1e-7, "{v} vs {expect}");
    }

    #[test]
    fn xc_matrix_and_electron_count_on_water() {
        use mako_chem::basis::sto3g::sto3g;
        let mol = builders::water();
        let shells = sto3g().shells_for(&mol);
        let grid = MolecularGrid::build(&mol, 35, 12);
        let aos = evaluate_aos(&shells, &grid);
        // A crude density: half an electron pair in each of the 5 lowest
        // AOs — enough to check machinery (exact counts need a converged D).
        let layout = mako_chem::AoLayout::new(&shells);
        let mut d = Matrix::zeros(layout.nao, layout.nao);
        for i in 0..5 {
            d[(i, i)] = 1.0;
        }
        let res = evaluate_xc(&b3lyp(), &aos, &grid, &d);
        // Trace-like electron count: ∫ρ = 2 Σ_i D_ii ⟨φ_i|φ_i⟩ = 10 for
        // normalized AOs (overlap off-diagonals don't enter the diagonal D).
        assert!((res.n_electrons - 10.0).abs() < 0.05, "∫ρ = {}", res.n_electrons);
        assert!(res.energy < 0.0, "XC energy negative");
        assert!(res.matrix.asymmetry() < 1e-12);
        // The XC potential is attractive on the diagonal.
        for i in 0..layout.nao {
            assert!(res.matrix[(i, i)] < 0.0, "V_xc[{i},{i}]");
        }
    }

    #[test]
    fn ao_gradients_match_finite_differences() {
        use mako_chem::basis::sto3g::sto3g;
        let mol = builders::water();
        let shells = sto3g().shells_for(&mol);
        let probe = [0.31, -0.42, 0.53];
        let h = 1e-6;
        let eval_at = |p: [f64; 3]| {
            let grid = MolecularGrid {
                points: vec![crate::grid::GridPoint {
                    position: p,
                    weight: 1.0,
                }],
            };
            let aos = evaluate_aos(&shells, &grid);
            (0..aos.phi.cols()).map(|j| aos.phi[(0, j)]).collect::<Vec<_>>()
        };
        let grid = MolecularGrid {
            points: vec![crate::grid::GridPoint {
                position: probe,
                weight: 1.0,
            }],
        };
        let aos = evaluate_aos(&shells, &grid);
        for dim in 0..3 {
            let mut pp = probe;
            pp[dim] += h;
            let mut pm = probe;
            pm[dim] -= h;
            let up = eval_at(pp);
            let lo = eval_at(pm);
            for j in 0..up.len() {
                let fd = (up[j] - lo[j]) / (2.0 * h);
                let an = aos.grad[dim][(0, j)];
                assert!(
                    (fd - an).abs() < 1e-6 * (1.0 + fd.abs()),
                    "dim={dim} ao={j}: fd {fd} vs {an}"
                );
            }
        }
    }
}
