//! RI-J (resolution-of-the-identity Coulomb) Fock builds with
//! adaptive-precision tiles — the density-fitting path of the paper's
//! follow-on work ("Accelerating Density Fitting with Adaptive-precision
//! and 8-bit Integer on AI Accelerators").
//!
//! Instead of the O(N⁴) quartet sum, the Coulomb matrix is fitted through
//! an auxiliary basis `{P}`:
//!
//! ```text
//! γ_P = Σ_{μν} D_{μν} (μν|P)          (pass 1: γ = Bᵀ·w∘d)
//! (P|Q) c_Q = γ_P                      (solve: Cholesky of the metric)
//! J_{μν} = Σ_P (μν|P) c_P              (pass 2: j = B·c)
//! ```
//!
//! The 3-center tensor `B` is stored once per geometry as an
//! `(nrows × naux)` matrix whose rows are the surviving screened AO pairs
//! `μ ≥ ν` (off-diagonal shell blocks carry weight 2 in pass 1 — the
//! symmetric double-count — and scatter into both `J_{μν}` and `J_{νμ}`).
//! Both contractions are **tiled**, and every tile independently picks the
//! cheapest storage tier — int8 / fp16 / bf16 / tf32 / fp64 — whose
//! rigorous error bound fits its share of the caller's per-element budget
//! (see [`mako_quant::RijSchedule`]).
//!
//! # Determinism
//!
//! `build_j` is bitwise invariant under the rayon thread count:
//!
//! * tile precision picks are computed **serially** up front from
//!   `(block norms, vector stats, schedule)` — pure data, no timing;
//! * pass 1 parallelizes over aux **column tiles** (disjoint γ segments),
//!   pass 2 over B **row tiles** (disjoint J rows); within each output
//!   segment the contraction tiles are reduced serially in ascending tile
//!   order, so every FP64 addition happens in a fixed order;
//! * int8 quantization of the shared vector operand is done once per tile
//!   **before** the parallel section; quantization of B-tile slices inside
//!   workers is a pure function of the tile bytes.
//!
//! The simulated device clock is likewise summed in fixed tile order from
//! the serial pick table, so it is byte-identical across thread counts.
//!
//! # Error contract
//!
//! [`RijJStats::pass1_bound`] / [`RijJStats::pass2_bound`] are the maxima
//! over output elements of the summed per-tile bounds
//! ([`mako_quant::tile_error_bound`]); by the picker's budget-share rule
//! each is ≤ `budget` whenever quantization is enabled. The *end-to-end*
//! deviation of J from a pure-FP64 build additionally passes pass 1's error
//! through the metric solve, which amplifies by at most the metric's
//! condition; the bench reports both numbers.

use mako_accel::CostModel;
use mako_chem::cart::nsph;
use mako_chem::AoLayout;
use mako_eri::batch::EriClass;
use mako_eri::rij::AuxBasis;
use mako_eri::screening::ScreenedPair;
use mako_eri::{three_center_block, PqIndex};
use mako_kernels::pipeline::{batch_device_seconds, PipelineConfig};
use mako_linalg::{cholesky, LinalgError, Matrix};
use mako_precision::{Int8Tile, Precision, TilePrecision};
use mako_quant::{tile_error_bound, RijSchedule, TileStats};
use rayon::prelude::*;
use std::collections::BTreeMap;

/// Geometry-time configuration of the RI-J engine.
#[derive(Debug, Clone, Copy)]
pub struct RijConfig {
    /// 3-center Schwarz cutoff: `(μν|P)` shell blocks with
    /// `Q_μν · Q_P` **strictly below** this are never evaluated and stay
    /// exact zeros in `B` (the pinned boundary convention: equality
    /// survives).
    pub threec_cutoff: f64,
    /// Tile edge along the pair-row axis of `B`.
    pub tile_rows: usize,
    /// Tile edge along the auxiliary-function axis of `B`.
    pub tile_cols: usize,
}

impl Default for RijConfig {
    fn default() -> RijConfig {
        RijConfig {
            threec_cutoff: 1e-12,
            tile_rows: 64,
            tile_cols: 64,
        }
    }
}

/// One row of `B`: a surviving AO pair and its pass-1 weight / scatter
/// targets.
#[derive(Debug, Clone, Copy)]
struct RowMeta {
    /// Global AO index μ.
    i_ao: usize,
    /// Global AO index ν.
    j_ao: usize,
    /// 2.0 for off-diagonal shell blocks (μ-shell ≠ ν-shell), 1.0 on the
    /// diagonal blocks, whose rows already enumerate both orders.
    weight: f64,
}

/// Bookkeeping from one [`RijEngine::build_j`] call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RijJStats {
    /// Tiles executed per tier, indexed by [`TilePrecision::rank`]
    /// (int8, fp16, bf16, tf32, fp64), summed over both passes.
    pub tile_counts: [usize; 5],
    /// Simulated device seconds for both tiled contractions (the solve is
    /// priced into the engine build).
    pub device_seconds: f64,
    /// Max over γ elements of the summed per-tile error bounds of pass 1.
    pub pass1_bound: f64,
    /// Max over J rows of the summed per-tile error bounds of pass 2.
    pub pass2_bound: f64,
}

/// The prepared RI-J engine for one geometry: the screened 3-center tensor,
/// the Cholesky factor of the 2-center metric, and per-tile block norms.
pub struct RijEngine {
    rows: Vec<RowMeta>,
    /// `(nrows × naux)` 3-center tensor, rows in screened-pair order.
    b: Matrix,
    /// Lower-triangular `L` with `(P|Q) = L·Lᵀ`.
    chol: Matrix,
    /// `max |B|` per `(row tile, col tile)`, row-major
    /// `n_row_tiles × n_col_tiles`.
    norms: Vec<f64>,
    tile_rows: usize,
    tile_cols: usize,
    n_row_tiles: usize,
    n_col_tiles: usize,
    nao: usize,
    /// Simulated device seconds to assemble `B`, the metric, and its
    /// Cholesky factor (once per geometry).
    pub build_device_seconds: f64,
    /// `(pair, aux shell)` 3-center blocks actually evaluated.
    pub threec_evaluated: usize,
    /// `(pair, aux shell)` blocks dropped by the Schwarz cutoff.
    pub threec_screened: usize,
}

/// Achievable FLOP/s (or int8 OP/s) of one tile tier on the modeled device:
/// tensor path where the architecture has one, CUDA cores otherwise, scaled
/// by the model's tuned-peak fraction.
fn tier_peak(model: &CostModel, tier: TilePrecision) -> f64 {
    let d = &model.device;
    let raw = match tier {
        TilePrecision::Int8 => d.int8_tensor_peak().max(d.cuda_peak(Precision::Fp16)),
        TilePrecision::Fp64 => d
            .tensor_peak(Precision::Fp64)
            .max(d.cuda_peak(Precision::Fp64)),
        t => {
            let p = t.as_precision().expect("non-fp64 float tier maps to Precision");
            d.tensor_peak(p).max(d.cuda_peak(p))
        }
    };
    raw * model.tuned_peak_fraction
}

impl RijEngine {
    /// Assemble the engine for one geometry: fill the screened `B` tensor
    /// (parallel over pairs — disjoint row blocks), build and factor the
    /// 2-center metric, compute per-tile block norms, and price the whole
    /// build on the simulated device clock. Emits the `rij.build` span.
    ///
    /// Fails only if the Coulomb metric is not positive definite (a
    /// linearly dependent auxiliary basis).
    pub fn build(
        pairs: &[ScreenedPair],
        layout: &AoLayout,
        aux: &AuxBasis,
        cfg: &RijConfig,
        pipeline: &PipelineConfig,
        model: &CostModel,
    ) -> Result<RijEngine, LinalgError> {
        let mut span = mako_trace::span("rij", "build");
        let naux = aux.naux();
        let tile_rows = cfg.tile_rows.max(1);
        let tile_cols = cfg.tile_cols.max(1);

        // Row metadata + per-pair row offsets, in screened-pair order.
        let mut rows: Vec<RowMeta> = Vec::new();
        let mut row0s: Vec<usize> = Vec::with_capacity(pairs.len());
        for pair in pairs {
            row0s.push(rows.len());
            let (na, nb) = (nsph(pair.data.la), nsph(pair.data.lb));
            let (i0, j0) = (layout.range(pair.i).start, layout.range(pair.j).start);
            let weight = if pair.i == pair.j { 1.0 } else { 2.0 };
            for a in 0..na {
                for b in 0..nb {
                    rows.push(RowMeta {
                        i_ao: i0 + a,
                        j_ao: j0 + b,
                        weight,
                    });
                }
            }
        }
        let nrows = rows.len();

        // Fill B in parallel, one disjoint row block per pair, in bounded
        // waves so the transient per-pair blocks never double B's memory.
        // Each worker evaluates its pair against every surviving aux
        // shell; screened blocks stay exact zeros. Values are pure
        // functions of the pair data, so the assembled tensor is
        // thread-count invariant regardless of the wave cut.
        const WAVE_PAIRS: usize = 512;
        let mut b = Matrix::zeros(nrows, naux);
        let (mut threec_evaluated, mut threec_screened) = (0usize, 0usize);
        for w0 in (0..pairs.len()).step_by(WAVE_PAIRS) {
            let w1 = (w0 + WAVE_PAIRS).min(pairs.len());
            let blocks: Vec<(usize, Matrix, usize, usize)> = pairs[w0..w1]
                .par_iter()
                .zip(row0s[w0..w1].par_iter())
                .map(|(pair, &r0)| {
                    let nr = nsph(pair.data.la) * nsph(pair.data.lb);
                    let lsum = pair.data.la + pair.data.lb;
                    let mut block = Matrix::zeros(nr, naux);
                    // One PqIndex per aux angular momentum present.
                    let mut idx_cache: BTreeMap<usize, PqIndex> = BTreeMap::new();
                    let (mut evaluated, mut screened) = (0usize, 0usize);
                    for (s, apair) in aux.pairs.iter().enumerate() {
                        if pair.bound * aux.bounds[s] < cfg.threec_cutoff {
                            screened += 1;
                            continue;
                        }
                        evaluated += 1;
                        let laux = aux.layout.shell_l[s];
                        let idx = idx_cache
                            .entry(laux)
                            .or_insert_with(|| PqIndex::new(lsum, laux));
                        let t = three_center_block(&pair.data, apair, idx);
                        for (pi, p) in aux.layout.range(s).enumerate() {
                            for r in 0..nr {
                                block[(r, p)] = t[(r, pi)];
                            }
                        }
                    }
                    (r0, block, evaluated, screened)
                })
                .collect();
            for (r0, block, ev, sc) in &blocks {
                b.set_block(*r0, 0, block);
                threec_evaluated += ev;
                threec_screened += sc;
            }
        }

        // 2-center metric and its Cholesky factor.
        let metric = mako_eri::two_center_metric(aux);
        let chol = cholesky(&metric)?;

        // Per-tile block norms (pure max — deterministic in parallel).
        let n_row_tiles = nrows.div_ceil(tile_rows).max(1);
        let n_col_tiles = naux.div_ceil(tile_cols).max(1);
        let tile_ids: Vec<usize> = (0..n_row_tiles * n_col_tiles).collect();
        let norms: Vec<f64> = tile_ids
            .par_iter()
            .map(|&t| {
                let (rt, ct) = (t / n_col_tiles, t % n_col_tiles);
                let (r0, r1) = (rt * tile_rows, ((rt + 1) * tile_rows).min(nrows));
                let (c0, c1) = (ct * tile_cols, ((ct + 1) * tile_cols).min(naux));
                let mut m = 0.0f64;
                for r in r0..r1 {
                    for &x in &b.row(r)[c0..c1] {
                        m = m.max(x.abs());
                    }
                }
                m
            })
            .collect();

        // Device pricing: every evaluated 3-center shell block is a quartet
        // of class (la, lb | l_P, 0) with kcd = 1 (the dummy); the metric's
        // lower triangle prices as (l_P, 0 | l_Q, 0). Classes are priced in
        // sorted order as one batched launch each, then the Cholesky is
        // charged as n³/3 FP64 FLOPs.
        let mut class_counts: BTreeMap<(usize, usize, usize, usize), usize> = BTreeMap::new();
        for pair in pairs {
            for (s, _) in aux.pairs.iter().enumerate() {
                if pair.bound * aux.bounds[s] < cfg.threec_cutoff {
                    continue;
                }
                *class_counts
                    .entry((
                        pair.data.la,
                        pair.data.lb,
                        aux.layout.shell_l[s],
                        pair.data.degree(),
                    ))
                    .or_insert(0) += 1;
            }
        }
        let mut twoc_counts: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for p in 0..aux.nshells() {
            for q in 0..=p {
                *twoc_counts
                    .entry((aux.layout.shell_l[p], aux.layout.shell_l[q]))
                    .or_insert(0) += 1;
            }
        }
        let mut build_device_seconds = 0.0;
        for (&(la, lb, lc, kab), &n) in &class_counts {
            let class = EriClass {
                la,
                lb,
                lc,
                ld: 0,
                kab,
                kcd: 1,
            };
            build_device_seconds += batch_device_seconds(&class, n, pipeline, model);
        }
        for (&(lp, lq), &n) in &twoc_counts {
            let class = EriClass {
                la: lp,
                lb: 0,
                lc: lq,
                ld: 0,
                kab: 1,
                kcd: 1,
            };
            build_device_seconds += batch_device_seconds(&class, n, pipeline, model);
        }
        let chol_flops = (naux as f64).powi(3) / 3.0;
        build_device_seconds += chol_flops / tier_peak(model, TilePrecision::Fp64);

        if span.is_recording() {
            span.add_field("nrows", nrows);
            span.add_field("naux", naux);
            span.add_field("pairs", pairs.len());
            span.add_field("threec_evaluated", threec_evaluated);
            span.add_field("threec_screened", threec_screened);
            span.add_field("device_seconds", build_device_seconds);
        }
        span.end();

        Ok(RijEngine {
            rows,
            b,
            chol,
            norms,
            tile_rows,
            tile_cols,
            n_row_tiles,
            n_col_tiles,
            nao: layout.nao,
            build_device_seconds,
            threec_evaluated,
            threec_screened,
        })
    }

    /// Number of surviving AO-pair rows of `B`.
    pub fn nrows(&self) -> usize {
        self.rows.len()
    }

    /// Number of auxiliary functions.
    pub fn naux(&self) -> usize {
        self.chol.rows()
    }

    /// Bytes held by the 3-center tensor.
    pub fn b_bytes(&self) -> usize {
        self.b.rows() * self.b.cols() * std::mem::size_of::<f64>()
    }

    /// Build the Coulomb matrix for `density` under the adaptive-precision
    /// schedule `sched`, pricing the two tiled contractions on `model`'s
    /// device clock. Returns `(J, stats)`. Bitwise thread-count invariant
    /// (module docs); emits `rij.pick`, `rij.solve`, and `rij.contract`.
    pub fn build_j(
        &self,
        density: &Matrix,
        sched: &RijSchedule,
        model: &CostModel,
    ) -> (Matrix, RijJStats) {
        assert_eq!(density.rows(), self.nao, "density must be nao × nao");
        let mut span = mako_trace::span("rij", "contract");
        let (nrows, naux) = (self.b.rows(), self.b.cols());
        let (nrt, nct) = (self.n_row_tiles, self.n_col_tiles);
        let mut stats = RijJStats::default();

        // Weighted density vector over the pair rows.
        let wd: Vec<f64> = self
            .rows
            .iter()
            .map(|r| r.weight * density[(r.i_ao, r.j_ao)])
            .collect();

        // ---- pass 1: γ = Bᵀ · wd ------------------------------------
        // Serial pick table: tier per (row tile, col tile), budget shared
        // across the n_row_tiles contributions to each γ element.
        let wd_stats: Vec<TileStats> = (0..nrt)
            .map(|rt| {
                let seg = &wd[rt * self.tile_rows..((rt + 1) * self.tile_rows).min(nrows)];
                vec_stats(seg, 0.0)
            })
            .collect();
        let picks1: Vec<TilePrecision> = (0..nrt * nct)
            .map(|t| {
                let (rt, ct) = (t / nct, t % nct);
                let s = TileStats {
                    block_norm: self.norms[rt * nct + ct],
                    ..wd_stats[rt]
                };
                sched.pick(&s, nrt)
            })
            .collect();
        // Rigorous per-element bound: γ_P 's tiles are one column of the
        // pick table; take the max over column tiles of the summed bounds.
        for ct in 0..nct {
            let mut total = 0.0;
            for rt in 0..nrt {
                let s = TileStats {
                    block_norm: self.norms[rt * nct + ct],
                    ..wd_stats[rt]
                };
                total += tile_error_bound(picks1[rt * nct + ct], &s);
            }
            stats.pass1_bound = stats.pass1_bound.max(total);
        }
        // Shared-operand int8 tiles, quantized once before the parallel
        // section (deterministic bytes).
        let qwd: Vec<Int8Tile> = (0..nrt)
            .map(|rt| {
                let seg = &wd[rt * self.tile_rows..((rt + 1) * self.tile_rows).min(nrows)];
                Int8Tile::quantize(seg)
            })
            .collect();
        let mut gamma = vec![0.0f64; naux];
        gamma
            .par_chunks_mut(self.tile_cols)
            .enumerate()
            .for_each(|(ct, gseg)| {
                let c0 = ct * self.tile_cols;
                for rt in 0..nrt {
                    let r0 = rt * self.tile_rows;
                    let r1 = ((rt + 1) * self.tile_rows).min(nrows);
                    self.pass1_tile(
                        picks1[rt * nct + ct],
                        r0,
                        r1,
                        c0,
                        c0 + gseg.len(),
                        &wd,
                        &qwd[rt],
                        gseg,
                    );
                }
            });

        // ---- solve (P|Q) c = γ ---------------------------------------
        // Forward/back substitution against the stored Cholesky factor,
        // serial FP64 (priced into the engine build).
        let mut solve_span = mako_trace::span("rij", "solve");
        let l = &self.chol;
        let mut y = vec![0.0f64; naux];
        for i in 0..naux {
            let mut s = gamma[i];
            for k in 0..i {
                s -= l[(i, k)] * y[k];
            }
            y[i] = s / l[(i, i)];
        }
        let mut c = vec![0.0f64; naux];
        for i in (0..naux).rev() {
            let mut s = y[i];
            for k in i + 1..naux {
                s -= l[(k, i)] * c[k];
            }
            c[i] = s / l[(i, i)];
        }
        if solve_span.is_recording() {
            solve_span.add_field("naux", naux);
        }
        solve_span.end();

        // ---- pass 2: j = B · c ---------------------------------------
        let c_stats: Vec<TileStats> = (0..nct)
            .map(|ct| {
                let seg = &c[ct * self.tile_cols..((ct + 1) * self.tile_cols).min(naux)];
                vec_stats(seg, 0.0)
            })
            .collect();
        let picks2: Vec<TilePrecision> = (0..nrt * nct)
            .map(|t| {
                let (rt, ct) = (t / nct, t % nct);
                let s = TileStats {
                    block_norm: self.norms[rt * nct + ct],
                    ..c_stats[ct]
                };
                sched.pick(&s, nct)
            })
            .collect();
        for rt in 0..nrt {
            let mut total = 0.0;
            for ct in 0..nct {
                let s = TileStats {
                    block_norm: self.norms[rt * nct + ct],
                    ..c_stats[ct]
                };
                total += tile_error_bound(picks2[rt * nct + ct], &s);
            }
            stats.pass2_bound = stats.pass2_bound.max(total);
        }
        let qc: Vec<Int8Tile> = (0..nct)
            .map(|ct| {
                let seg = &c[ct * self.tile_cols..((ct + 1) * self.tile_cols).min(naux)];
                Int8Tile::quantize(seg)
            })
            .collect();
        let mut jrow = vec![0.0f64; nrows];
        jrow.par_chunks_mut(self.tile_rows)
            .enumerate()
            .for_each(|(rt, jseg)| {
                let r0 = rt * self.tile_rows;
                for ct in 0..nct {
                    let c0 = ct * self.tile_cols;
                    let c1 = ((ct + 1) * self.tile_cols).min(naux);
                    self.pass2_tile(picks2[rt * nct + ct], r0, c0, c1, &c, &qc[ct], jseg);
                }
            });

        // Tile census + device clock, in fixed tile order from the serial
        // pick tables (byte-identical across thread counts). Each pass is
        // one fused launch.
        let mut device_seconds = 2.0 * model.device.launch_latency;
        for (t, &tier) in picks1.iter().chain(picks2.iter()).enumerate() {
            let (rt, ct) = ((t % (nrt * nct)) / nct, t % nct);
            let r1 = ((rt + 1) * self.tile_rows).min(nrows);
            let c1 = ((ct + 1) * self.tile_cols).min(naux);
            let flops = 2.0 * (r1 - rt * self.tile_rows) as f64 * (c1 - ct * self.tile_cols) as f64;
            device_seconds += flops / tier_peak(model, tier);
            stats.tile_counts[tier.rank()] += 1;
        }
        stats.device_seconds = device_seconds;
        if mako_trace::enabled() {
            mako_trace::instant(
                "rij",
                "pick",
                vec![
                    mako_trace::field("int8", stats.tile_counts[0]),
                    mako_trace::field("fp16", stats.tile_counts[1]),
                    mako_trace::field("bf16", stats.tile_counts[2]),
                    mako_trace::field("tf32", stats.tile_counts[3]),
                    mako_trace::field("fp64", stats.tile_counts[4]),
                ],
            );
        }

        // ---- scatter --------------------------------------------------
        // Each ordered J element is written exactly once (off-diagonal
        // shell blocks mirror; diagonal blocks enumerate both orders as
        // separate rows), then the near-symmetric diagonal blocks are
        // symmetrized exactly.
        let mut j = Matrix::zeros(self.nao, self.nao);
        for (r, meta) in self.rows.iter().enumerate() {
            j[(meta.i_ao, meta.j_ao)] = jrow[r];
            if meta.weight == 2.0 {
                j[(meta.j_ao, meta.i_ao)] = jrow[r];
            }
        }
        j.symmetrize();

        if span.is_recording() {
            span.add_field("nrows", nrows);
            span.add_field("naux", naux);
            span.add_field("device_seconds", stats.device_seconds);
            span.add_field("pass1_bound", stats.pass1_bound);
            span.add_field("pass2_bound", stats.pass2_bound);
        }
        span.end();
        (j, stats)
    }

    /// One pass-1 tile: accumulate `Σ_r B[r, P] · wd[r]` for every aux
    /// column of the tile into `out`, through the tile's storage tier.
    #[allow(clippy::too_many_arguments)]
    fn pass1_tile(
        &self,
        tier: TilePrecision,
        r0: usize,
        r1: usize,
        c0: usize,
        c1: usize,
        wd: &[f64],
        qwd: &Int8Tile,
        out: &mut [f64],
    ) {
        match tier {
            TilePrecision::Fp64 => {
                for (ci, p) in (c0..c1).enumerate() {
                    let mut s = 0.0f64;
                    for (r, &w) in (r0..r1).zip(&wd[r0..r1]) {
                        s += self.b[(r, p)] * w;
                    }
                    out[ci] += s;
                }
            }
            TilePrecision::Int8 => {
                let mut col = vec![0.0f64; r1 - r0];
                for (ci, p) in (c0..c1).enumerate() {
                    for r in r0..r1 {
                        col[r - r0] = self.b[(r, p)];
                    }
                    out[ci] += Int8Tile::quantize(&col).dot(qwd);
                }
            }
            t => {
                let prec = t.as_precision().expect("float tier");
                for (ci, p) in (c0..c1).enumerate() {
                    let mut s32 = 0.0f32;
                    for (r, &w) in (r0..r1).zip(&wd[r0..r1]) {
                        s32 += (prec.round(self.b[(r, p)]) * prec.round(w)) as f32;
                    }
                    out[ci] += s32 as f64;
                }
            }
        }
    }

    /// One pass-2 tile: accumulate `Σ_P B[r, P] · c[P]` for every pair row
    /// of the tile into `out`, through the tile's storage tier.
    #[allow(clippy::too_many_arguments)]
    fn pass2_tile(
        &self,
        tier: TilePrecision,
        r0: usize,
        c0: usize,
        c1: usize,
        c: &[f64],
        qc: &Int8Tile,
        out: &mut [f64],
    ) {
        match tier {
            TilePrecision::Fp64 => {
                for (ri, o) in out.iter_mut().enumerate() {
                    let row = &self.b.row(r0 + ri)[c0..c1];
                    let mut s = 0.0f64;
                    for (bv, cv) in row.iter().zip(&c[c0..c1]) {
                        s += bv * cv;
                    }
                    *o += s;
                }
            }
            TilePrecision::Int8 => {
                for (ri, o) in out.iter_mut().enumerate() {
                    let row = &self.b.row(r0 + ri)[c0..c1];
                    *o += Int8Tile::quantize(row).dot(qc);
                }
            }
            t => {
                let prec = t.as_precision().expect("float tier");
                for (ri, o) in out.iter_mut().enumerate() {
                    let row = &self.b.row(r0 + ri)[c0..c1];
                    let mut s32 = 0.0f32;
                    for (bv, cv) in row.iter().zip(&c[c0..c1]) {
                        s32 += (prec.round(*bv) * prec.round(*cv)) as f32;
                    }
                    *o += s32 as f64;
                }
            }
        }
    }
}

/// L1 / max / len statistics of a vector segment (block norm filled by the
/// caller).
fn vec_stats(seg: &[f64], block_norm: f64) -> TileStats {
    let mut l1 = 0.0f64;
    let mut mx = 0.0f64;
    for &x in seg {
        l1 += x.abs();
        mx = mx.max(x.abs());
    }
    TileStats {
        block_norm,
        vec_l1: l1,
        vec_max: mx,
        vec_len: seg.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fock::build_jk_reference;
    use mako_accel::DeviceSpec;
    use mako_chem::basis::{rij_universal, sto3g::sto3g};
    use mako_chem::builders::water;
    use mako_chem::Element;
    use mako_eri::screening::build_screened_pairs;

    fn water_setup() -> (Vec<ScreenedPair>, AoLayout, AuxBasis) {
        let mol = water();
        let shells = sto3g().shells_for(&mol);
        let layout = AoLayout::new(&shells);
        let pairs = build_screened_pairs(&shells, 1e-12);
        let aux_shells = rij_universal(&[Element::H, Element::O]).shells_for(&mol);
        (pairs, layout, AuxBasis::new(&aux_shells))
    }

    /// All *ordered* shell pairs — what [`build_jk_reference`] iterates
    /// (the screened `i ≥ j` list would silently halve the off-diagonal
    /// blocks).
    fn full_ordered_pairs(layout: &AoLayout) -> Vec<ScreenedPair> {
        let mol = water();
        let shells = sto3g().shells_for(&mol);
        assert_eq!(layout.nao, AoLayout::new(&shells).nao);
        let mut out = Vec::new();
        for i in 0..shells.len() {
            for j in 0..shells.len() {
                let data = mako_eri::shell_pair(&shells[i], &shells[j]);
                let bound = mako_eri::screening::schwarz_bound(&data);
                out.push(ScreenedPair { i, j, data, bound });
            }
        }
        out
    }

    fn test_density(n: usize) -> Matrix {
        let mut d = Matrix::from_fn(n, n, |i, j| {
            0.3 / (1.0 + (i as f64 - j as f64).abs())
        });
        d.symmetrize();
        d
    }

    fn engine(pairs: &[ScreenedPair], layout: &AoLayout, aux: &AuxBasis) -> RijEngine {
        RijEngine::build(
            pairs,
            layout,
            aux,
            &RijConfig::default(),
            &PipelineConfig::kernel_mako_fp64(),
            &CostModel::new(DeviceSpec::a100()),
        )
        .expect("metric positive definite")
    }

    #[test]
    fn water_rij_matches_dense_reference() {
        let (pairs, layout, aux) = water_setup();
        let eng = engine(&pairs, &layout, &aux);
        let d = test_density(layout.nao);
        let model = CostModel::new(DeviceSpec::a100());
        let (j_ri, stats) = eng.build_j(&d, &RijSchedule::fp64_reference(), &model);
        let dense = build_jk_reference(&d, &full_ordered_pairs(&layout), &layout);
        // RI-J is a *fitted* J: agreement is set by the aux basis, not by
        // machine epsilon. The even-tempered universal set holds the fit
        // to ~2e-3 relative on water, and the fitted Coulomb energy is
        // variationally bounded: E_RI ≤ E_dense always.
        let e_ri = 0.5 * d.dot(&j_ri);
        let e_dense = 0.5 * d.dot(&dense.j);
        assert!(
            e_ri <= e_dense * (1.0 + 1e-12),
            "robust fitting must bound the Coulomb energy from below: {e_ri} vs {e_dense}"
        );
        assert!(
            (e_ri - e_dense).abs() <= 5e-3 * e_dense.abs(),
            "E_J fit error: {e_ri} vs {e_dense}"
        );
        let dj = j_ri.sub(&dense.j).max_abs();
        assert!(dj < 2e-2, "max|ΔJ| = {dj}");
        // Reference schedule runs everything in fp64.
        assert_eq!(stats.tile_counts[..4], [0, 0, 0, 0]);
        assert!(stats.tile_counts[4] > 0);
        assert!(stats.device_seconds > 0.0);
        assert!(eng.build_device_seconds > 0.0);
        // J is exactly symmetric after the diagonal-block symmetrization.
        assert_eq!(j_ri.asymmetry(), 0.0);
    }

    #[test]
    fn adaptive_j_honors_the_picker_bounds() {
        let (pairs, layout, aux) = water_setup();
        let eng = engine(&pairs, &layout, &aux);
        let d = test_density(layout.nao);
        let model = CostModel::new(DeviceSpec::a100());
        let (j_ref, _) = eng.build_j(&d, &RijSchedule::fp64_reference(), &model);
        for budget in [1e-4, 1e-7, 1e-10] {
            let sched = RijSchedule::with_budget(budget);
            let (j_ad, stats) = eng.build_j(&d, &sched, &model);
            // The rigorous per-pass bounds respect the budget-share rule.
            assert!(
                stats.pass1_bound <= budget * (1.0 + 1e-12),
                "budget {budget}: pass1 bound {}",
                stats.pass1_bound
            );
            assert!(
                stats.pass2_bound <= budget * (1.0 + 1e-12),
                "budget {budget}: pass2 bound {}",
                stats.pass2_bound
            );
            // End-to-end deviation passes pass 1 through the metric solve;
            // on water the amplification stays well under 100×.
            let dj = j_ad.sub(&j_ref).max_abs();
            assert!(dj <= budget * 100.0, "budget {budget}: max|ΔJ| = {dj}");
        }
    }

    #[test]
    fn forced_tiers_trade_accuracy_for_device_seconds() {
        let (pairs, layout, aux) = water_setup();
        let eng = engine(&pairs, &layout, &aux);
        let d = test_density(layout.nao);
        let model = CostModel::new(DeviceSpec::a100());
        let (j_ref, ref_stats) = eng.build_j(&d, &RijSchedule::fp64_reference(), &model);
        let mut prev_err = f64::INFINITY;
        for tier in [
            TilePrecision::Int8,
            TilePrecision::Fp16,
            TilePrecision::Fp64,
        ] {
            let (j_t, stats) = eng.build_j(&d, &RijSchedule::forced(tier), &model);
            let ntiles: usize = stats.tile_counts.iter().sum();
            assert_eq!(stats.tile_counts[tier.rank()], ntiles, "{tier} pins all tiles");
            let err = j_t.sub(&j_ref).max_abs();
            assert!(
                err <= prev_err.max(1e-18) * 1.5,
                "{tier}: error {err} should not regress past {prev_err}"
            );
            prev_err = err;
            if tier != TilePrecision::Fp64 {
                assert!(
                    stats.device_seconds < ref_stats.device_seconds,
                    "{tier} must be cheaper than fp64 on the device clock"
                );
            }
        }
    }

    #[test]
    fn build_j_is_bitwise_thread_invariant() {
        let (pairs, layout, aux) = water_setup();
        let eng = engine(&pairs, &layout, &aux);
        let d = test_density(layout.nao);
        let model = CostModel::new(DeviceSpec::a100());
        let sched = RijSchedule::with_budget(1e-6);
        let baseline: Vec<u64> = {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .unwrap();
            let (j, _) = pool.install(|| eng.build_j(&d, &sched, &model));
            j.as_slice().iter().map(|x| x.to_bits()).collect()
        };
        for nt in [2usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(nt)
                .build()
                .unwrap();
            let (j, stats) = pool.install(|| eng.build_j(&d, &sched, &model));
            let bits: Vec<u64> = j.as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(baseline, bits, "{nt} threads changed J bits");
            assert!(stats.device_seconds > 0.0);
        }
    }

    #[test]
    fn threec_screening_only_drops_negligible_blocks() {
        let (pairs, layout, aux) = water_setup();
        // Pick a cutoff guaranteed to drop something but stay far from the
        // dominant blocks: just above the smallest bound product present.
        let min_prod = pairs
            .iter()
            .flat_map(|p| aux.bounds.iter().map(move |&b| p.bound * b))
            .fold(f64::INFINITY, f64::min);
        let cutoff = min_prod * 10.0;
        let loose = RijEngine::build(
            &pairs,
            &layout,
            &aux,
            &RijConfig {
                threec_cutoff: cutoff,
                ..RijConfig::default()
            },
            &PipelineConfig::kernel_mako_fp64(),
            &CostModel::new(DeviceSpec::a100()),
        )
        .unwrap();
        let exact = engine(&pairs, &layout, &aux);
        assert!(loose.threec_screened > 0, "cutoff {cutoff:e} should drop blocks");
        assert!(exact.threec_screened < loose.threec_screened);
        assert_eq!(
            exact.threec_evaluated + exact.threec_screened,
            loose.threec_evaluated + loose.threec_screened
        );
        let d = test_density(layout.nao);
        let model = CostModel::new(DeviceSpec::a100());
        let (jl, _) = loose.build_j(&d, &RijSchedule::fp64_reference(), &model);
        let (je, _) = exact.build_j(&d, &RijSchedule::fp64_reference(), &model);
        let dj = jl.sub(&je).max_abs();
        assert!(dj <= cutoff * 100.0, "screened-out blocks perturb J by {dj}");
    }
}
