//! One-electron molecular properties from the converged density: dipole
//! moments and Mulliken population analysis.
//!
//! The dipole integrals fall out of the same Hermite machinery as the
//! overlaps: `⟨a| x |b⟩ = [E₁^{ij} + P_x E₀^{ij}] √(π/p)` per dimension,
//! where the first term is the Hermite first moment about the Gaussian
//! product center P.

use mako_chem::cart::cart_components;
use mako_chem::{AoLayout, Molecule, Shell};
use mako_eri::hermite::ETable;
use mako_eri::overlap_block;
use mako_linalg::{gemm, Matrix, Transpose};

/// Dipole moment vector (atomic units; 1 a.u. = 2.5417 Debye).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dipole {
    /// Cartesian components, a.u.
    pub components: [f64; 3],
}

impl Dipole {
    /// Magnitude in atomic units.
    pub fn magnitude(&self) -> f64 {
        let [x, y, z] = self.components;
        (x * x + y * y + z * z).sqrt()
    }

    /// Magnitude in Debye.
    pub fn debye(&self) -> f64 {
        self.magnitude() * 2.541746
    }
}

/// AO-basis dipole-moment integral matrices `⟨a| r_d |b⟩` for d = x, y, z.
pub fn dipole_matrices(shells: &[Shell]) -> [Matrix; 3] {
    let layout = AoLayout::new(shells);
    let n = layout.nao;
    let mut out = [Matrix::zeros(n, n), Matrix::zeros(n, n), Matrix::zeros(n, n)];
    for i in 0..shells.len() {
        for j in 0..=i {
            let blocks = dipole_pair_blocks(&shells[i], &shells[j]);
            let (oi, oj) = (layout.shell_offsets[i], layout.shell_offsets[j]);
            for (d, block) in blocks.iter().enumerate() {
                for a in 0..block.rows() {
                    for b in 0..block.cols() {
                        out[d][(oi + a, oj + b)] = block[(a, b)];
                        out[d][(oj + b, oi + a)] = block[(a, b)];
                    }
                }
            }
        }
    }
    out
}

/// Spherical dipole blocks for one shell pair.
fn dipole_pair_blocks(sa: &Shell, sb: &Shell) -> [Matrix; 3] {
    let (la, lb) = (sa.l, sb.l);
    let ab = [
        sa.center[0] - sb.center[0],
        sa.center[1] - sb.center[1],
        sa.center[2] - sb.center[2],
    ];
    let ca = cart_components(la);
    let cb = cart_components(lb);
    let mut carts = [
        Matrix::zeros(ca.len(), cb.len()),
        Matrix::zeros(ca.len(), cb.len()),
        Matrix::zeros(ca.len(), cb.len()),
    ];
    for (pi, &a) in sa.exps.iter().enumerate() {
        for (pj, &b) in sb.exps.iter().enumerate() {
            let coef = sa.coefs[pi] * sb.coefs[pj];
            let p = a + b;
            let pref = coef * (std::f64::consts::PI / p).powf(1.5);
            let pc = [
                (a * sa.center[0] + b * sb.center[0]) / p,
                (a * sa.center[1] + b * sb.center[1]) / p,
                (a * sa.center[2] + b * sb.center[2]) / p,
            ];
            let e = [
                ETable::new(la, lb, a, b, ab[0]),
                ETable::new(la, lb, a, b, ab[1]),
                ETable::new(la, lb, a, b, ab[2]),
            ];
            for (ia, &ka) in ca.iter().enumerate() {
                let ka = [ka.0, ka.1, ka.2];
                for (ib, &kb) in cb.iter().enumerate() {
                    let kb = [kb.0, kb.1, kb.2];
                    let s: [f64; 3] = [
                        e[0].get(ka[0], kb[0], 0),
                        e[1].get(ka[1], kb[1], 0),
                        e[2].get(ka[2], kb[2], 0),
                    ];
                    for d in 0..3 {
                        // ⟨x_d⟩ = E₁ + P_d E₀ along d, overlap along others.
                        let m_d = e[d].get(ka[d], kb[d], 1) + pc[d] * s[d];
                        let others: f64 = (0..3).filter(|&k| k != d).map(|k| s[k]).product();
                        carts[d][(ia, ib)] += pref * m_d * others;
                    }
                }
            }
        }
    }
    let ta = mako_chem::harmonics::cart_to_sph(la);
    let tb = mako_chem::harmonics::cart_to_sph(lb);
    carts.map(|m| {
        let half = gemm(&ta, Transpose::No, &m, Transpose::No);
        gemm(&half, Transpose::No, &tb, Transpose::Yes)
    })
}

/// Total dipole moment: `μ_d = Σ_A Z_A R_{A,d} − 2 Σ_{μν} D_{μν} ⟨μ|r_d|ν⟩`
/// (closed shell, D = Σ_occ C Cᵀ).
pub fn dipole_moment(mol: &Molecule, shells: &[Shell], density: &Matrix) -> Dipole {
    let dm = dipole_matrices(shells);
    let mut comps = [0.0f64; 3];
    for atom in &mol.atoms {
        for (c, p) in comps.iter_mut().zip(atom.position) {
            *c += atom.element.charge() * p;
        }
    }
    for (c, m) in comps.iter_mut().zip(&dm) {
        *c -= 2.0 * density.dot(m);
    }
    Dipole { components: comps }
}

/// Mulliken atomic populations: `q_A = Z_A − 2 Σ_{μ∈A} (DS)_{μμ}`.
pub fn mulliken_charges(mol: &Molecule, shells: &[Shell], density: &Matrix) -> Vec<f64> {
    let layout = AoLayout::new(shells);
    let n = layout.nao;
    let mut s = Matrix::zeros(n, n);
    for i in 0..shells.len() {
        for j in 0..shells.len() {
            let block = overlap_block(&shells[i], &shells[j]);
            let (oi, oj) = (layout.shell_offsets[i], layout.shell_offsets[j]);
            for a in 0..block.rows() {
                for b in 0..block.cols() {
                    s[(oi + a, oj + b)] = block[(a, b)];
                }
            }
        }
    }
    let ds = gemm(density, Transpose::No, &s, Transpose::No);
    let mut charges: Vec<f64> = mol.atoms.iter().map(|a| a.element.charge()).collect();
    for (si, shell) in shells.iter().enumerate() {
        if shell.atom == usize::MAX {
            continue;
        }
        for mu in layout.range(si) {
            charges[shell.atom] -= 2.0 * ds[(mu, mu)];
        }
    }
    charges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scf::{ScfConfig, ScfDriver};
    use mako_chem::basis::sto3g::sto3g;
    use mako_chem::builders;

    #[test]
    fn water_dipole_matches_sto3g_hf() {
        // HF/STO-3G water dipole ≈ 1.71 Debye at the experimental geometry.
        let mol = builders::water();
        let basis = sto3g();
        let shells = basis.shells_for(&mol);
        let res = ScfDriver::new(&mol, &basis, ScfConfig::default()).run().expect("scf run");
        let mu = dipole_moment(&mol, &shells, &res.density);
        assert!(
            (mu.debye() - 1.71).abs() < 0.1,
            "μ(H2O) = {} D (expected ≈ 1.71)",
            mu.debye()
        );
        // The dipole points along the C2v axis (z in our geometry, toward H).
        assert!(mu.components[0].abs() < 1e-6);
        assert!(mu.components[1].abs() < 1e-6);
    }

    #[test]
    fn methane_dipole_vanishes_by_symmetry() {
        let mol = builders::methane();
        let basis = sto3g();
        let shells = basis.shells_for(&mol);
        let res = ScfDriver::new(&mol, &basis, ScfConfig::default()).run().expect("scf run");
        let mu = dipole_moment(&mol, &shells, &res.density);
        assert!(mu.magnitude() < 1e-5, "Td symmetry forces μ = 0, got {}", mu.magnitude());
    }

    #[test]
    fn mulliken_charges_sum_to_zero_and_polarize_correctly() {
        let mol = builders::water();
        let basis = sto3g();
        let shells = basis.shells_for(&mol);
        let res = ScfDriver::new(&mol, &basis, ScfConfig::default()).run().expect("scf run");
        let q = mulliken_charges(&mol, &shells, &res.density);
        let total: f64 = q.iter().sum();
        assert!(total.abs() < 1e-8, "neutral molecule: Σq = {total}");
        // Oxygen negative, hydrogens positive.
        assert!(q[0] < -0.1, "O charge {q:?}");
        assert!(q[1] > 0.05 && q[2] > 0.05);
        assert!((q[1] - q[2]).abs() < 1e-8, "equivalent hydrogens");
    }

    #[test]
    fn dipole_matrices_are_symmetric() {
        let mol = builders::ammonia();
        let shells = sto3g().shells_for(&mol);
        for m in dipole_matrices(&shells) {
            assert!(m.asymmetry() < 1e-12);
        }
    }
}
