//! Coulomb (J) and exchange (K) matrix construction from shell-quartet
//! batches.
//!
//! `J_{μν} = Σ_{λσ} D_{λσ} (μν|λσ)` and `K_{μλ} = Σ_{νσ} D_{νσ} (μν|λσ)`.
//!
//! Quartets are evaluated once per canonical arrangement (bra pair ≥ ket
//! pair, shell `i ≥ j` within a pair); the full 8-fold permutational sum is
//! recovered by explicitly scattering every *distinct ordered arrangement*
//! of the quartet. Contributions accumulate into FP64 buffers regardless of
//! the kernel precision — stage two of QuantMako's dual-stage accumulation.

use mako_accel::{CostModel, SimTimer};
use mako_chem::AoLayout;
use mako_eri::batch::QuartetBatch;
use mako_eri::screening::ScreenedPair;
use mako_eri::tensor::Tensor4;
use mako_kernels::pipeline::{run_batch, PipelineConfig};
use mako_linalg::Matrix;
use mako_quant::{ExecClass, QuantSchedule};
use std::collections::HashSet;

/// The J and K matrices of one Fock build.
#[derive(Debug, Clone)]
pub struct JkMatrices {
    /// Coulomb matrix.
    pub j: Matrix,
    /// Exchange matrix.
    pub k: Matrix,
}

/// Bookkeeping from one Fock build.
#[derive(Debug, Clone, Default)]
pub struct FockBuildStats {
    /// Quartets evaluated in FP64.
    pub fp64_quartets: usize,
    /// Quartets evaluated with the quantized pipeline.
    pub quantized_quartets: usize,
    /// Quartets pruned by the scheduler.
    pub pruned_quartets: usize,
    /// Simulated device seconds spent in ERI kernels.
    pub device_seconds: f64,
}

/// Build J and K for density `D` from pre-batched quartets.
///
/// * `schedule` decides per batch sub-population whether to run FP64,
///   quantized, or prune (QuantMako's convergence-aware scheduling);
/// * `fp64_cfg` / `quant_cfg` are the tuned pipeline configurations
///   (typically from `mako-compiler`'s kernel cache);
/// * the returned stats carry the simulated device time.
#[allow(clippy::too_many_arguments)]
pub fn build_jk(
    density: &Matrix,
    pairs: &[ScreenedPair],
    batches: &[QuartetBatch],
    layout: &AoLayout,
    schedule: &QuantSchedule,
    fp64_cfg: &PipelineConfig,
    quant_cfg: &PipelineConfig,
    model: &CostModel,
) -> (JkMatrices, FockBuildStats) {
    let n = layout.nao;
    let mut j = Matrix::zeros(n, n);
    let mut k = Matrix::zeros(n, n);
    let mut stats = FockBuildStats::default();
    let mut timer = SimTimer::new();
    let d_max = density.max_abs();
    // System-wide estimate scale for the relative FP64 bar: the largest
    // Schwarz product times the largest density element.
    let max_bound = pairs.iter().map(|p| p.bound).fold(0.0f64, f64::max);
    let scale = max_bound * max_bound * d_max.max(1e-30);

    for batch in batches {
        // Split the batch by scheduling decision (bounds vary by quartet).
        let mut fp64_batch = QuartetBatch {
            class: batch.class,
            quartets: Vec::new(),
        };
        let mut quant_batch = QuartetBatch {
            class: batch.class,
            quartets: Vec::new(),
        };
        for &(pi, qi) in &batch.quartets {
            match schedule.decide(pairs[pi].bound, pairs[qi].bound, d_max, scale) {
                ExecClass::Pruned => stats.pruned_quartets += 1,
                ExecClass::Fp64 => fp64_batch.quartets.push((pi, qi)),
                ExecClass::Quantized => quant_batch.quartets.push((pi, qi)),
            }
        }
        stats.fp64_quartets += fp64_batch.len();
        stats.quantized_quartets += quant_batch.len();

        for (sub, cfg) in [(&fp64_batch, fp64_cfg), (&quant_batch, quant_cfg)] {
            if sub.is_empty() {
                continue;
            }
            let out = run_batch(sub, pairs, cfg, model);
            timer.add_seconds(out.seconds);
            for (t, &(pi, qi)) in out.tensors.iter().zip(&sub.quartets) {
                scatter_quartet(
                    t,
                    &pairs[pi],
                    &pairs[qi],
                    density,
                    layout,
                    &mut j,
                    &mut k,
                );
            }
        }
    }

    stats.device_seconds = timer.total_seconds();
    j.symmetrize();
    k.symmetrize();
    (JkMatrices { j, k }, stats)
}

/// Scatter one canonical quartet into J and K over all distinct ordered
/// shell arrangements (the explicit 8-fold permutational sum).
fn scatter_quartet(
    t: &Tensor4,
    pab: &ScreenedPair,
    pcd: &ScreenedPair,
    d: &Matrix,
    layout: &AoLayout,
    j: &mut Matrix,
    k: &mut Matrix,
) {
    let (sa, sb, sc, sd) = (pab.i, pab.j, pcd.i, pcd.j);
    let [na, nb, nc, nd] = t.dims;

    // Enumerate the 8 permutations as (swap_ab, swap_cd, swap_braket);
    // deduplicate by the ordered shell tuple they produce.
    let mut seen: HashSet<(usize, usize, usize, usize)> = HashSet::new();
    for braket in [false, true] {
        for s_ab in [false, true] {
            for s_cd in [false, true] {
                // Ordered arrangement (A', B' | C', D').
                let (mut qa, mut qb, mut qc, mut qd) = (sa, sb, sc, sd);
                if s_ab {
                    std::mem::swap(&mut qa, &mut qb);
                }
                if s_cd {
                    std::mem::swap(&mut qc, &mut qd);
                }
                if braket {
                    std::mem::swap(&mut qa, &mut qc);
                    std::mem::swap(&mut qb, &mut qd);
                }
                if !seen.insert((qa, qb, qc, qd)) {
                    continue;
                }
                // Offsets for this arrangement.
                let off = |s: usize| layout.shell_offsets[s];
                let (o1, o2, o3, o4) = (off(qa), off(qb), off(qc), off(qd));
                // Dimension bounds follow the arrangement.
                let (m1, m2, m3, m4) = {
                    let dim_of = |orig: usize| match orig {
                        0 => na,
                        1 => nb,
                        2 => nc,
                        _ => nd,
                    };
                    // Map arrangement slots back to tensor axes.
                    let axes = slot_axes(s_ab, s_cd, braket);
                    (
                        dim_of(axes[0]),
                        dim_of(axes[1]),
                        dim_of(axes[2]),
                        dim_of(axes[3]),
                    )
                };
                let axes = slot_axes(s_ab, s_cd, braket);
                for i1 in 0..m1 {
                    for i2 in 0..m2 {
                        for i3 in 0..m3 {
                            for i4 in 0..m4 {
                                let mut idx = [0usize; 4];
                                idx[axes[0]] = i1;
                                idx[axes[1]] = i2;
                                idx[axes[2]] = i3;
                                idx[axes[3]] = i4;
                                let v = t.get(idx[0], idx[1], idx[2], idx[3]);
                                if v == 0.0 {
                                    continue;
                                }
                                // J_{μν} += D_{λσ} (μν|λσ)
                                j[(o1 + i1, o2 + i2)] += d[(o3 + i3, o4 + i4)] * v;
                                // K_{μλ} += D_{νσ} (μν|λσ)
                                k[(o1 + i1, o3 + i3)] += d[(o2 + i2, o4 + i4)] * v;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// For an arrangement produced by the three swaps, gives for each
/// arrangement slot (A', B', C', D') the original tensor axis it reads.
fn slot_axes(s_ab: bool, s_cd: bool, braket: bool) -> [usize; 4] {
    let mut axes = [0usize, 1, 2, 3];
    if s_ab {
        axes.swap(0, 1);
    }
    if s_cd {
        axes.swap(2, 3);
    }
    if braket {
        axes.swap(0, 2);
        axes.swap(1, 3);
    }
    axes
}

/// Reference J/K build: dense full AO ERI contraction via the FP64 MMD
/// engine with no symmetry tricks — O(N⁴) memory-free quadruple loop over
/// shell quartets in all orders. Only usable for small systems; the unit
/// tests validate [`build_jk`] against it.
pub fn build_jk_reference(density: &Matrix, pairs_full: &[ScreenedPair], layout: &AoLayout) -> JkMatrices {
    use mako_eri::mmd::eri_quartet_mmd;
    let n = layout.nao;
    let mut j = Matrix::zeros(n, n);
    let mut k = Matrix::zeros(n, n);
    for pab in pairs_full {
        for pcd in pairs_full {
            let t = eri_quartet_mmd(&pab.data, &pcd.data);
            let (oa, ob, oc, od) = (
                layout.shell_offsets[pab.i],
                layout.shell_offsets[pab.j],
                layout.shell_offsets[pcd.i],
                layout.shell_offsets[pcd.j],
            );
            for a in 0..t.dims[0] {
                for b in 0..t.dims[1] {
                    for c in 0..t.dims[2] {
                        for dd in 0..t.dims[3] {
                            let v = t.get(a, b, c, dd);
                            j[(oa + a, ob + b)] += density[(oc + c, od + dd)] * v;
                            k[(oa + a, oc + c)] += density[(ob + b, od + dd)] * v;
                        }
                    }
                }
            }
        }
    }
    JkMatrices { j, k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mako_accel::DeviceSpec;
    use mako_chem::basis::sto3g::sto3g;
    use mako_chem::builders;
    use mako_eri::batch::batch_quartets;
    use mako_eri::screening::build_screened_pairs;

    /// All ordered shell pairs (for the reference build).
    fn full_ordered_pairs(shells: &[mako_chem::Shell]) -> Vec<ScreenedPair> {
        let mut out = Vec::new();
        for i in 0..shells.len() {
            for j in 0..shells.len() {
                let data = mako_eri::mmd::shell_pair(&shells[i], &shells[j]);
                let bound = mako_eri::screening::schwarz_bound(&data);
                out.push(ScreenedPair { i, j, data, bound });
            }
        }
        out
    }

    fn test_density(n: usize) -> Matrix {
        // A symmetric, positive-ish density-like matrix.
        let mut d = Matrix::from_fn(n, n, |i, j| {
            0.5 / (1.0 + (i as f64 - j as f64).abs())
        });
        d.symmetrize();
        d
    }

    #[test]
    fn jk_matches_dense_reference_water() {
        let mol = builders::water();
        let shells = sto3g().shells_for(&mol);
        let layout = AoLayout::new(&shells);
        let d = test_density(layout.nao);

        let pairs = build_screened_pairs(&shells, 1e-12);
        let batches = batch_quartets(&pairs, 1e-14);
        let schedule = QuantSchedule::fp64_reference(0.0);
        let model = CostModel::new(DeviceSpec::a100());
        let cfg = PipelineConfig::kernel_mako_fp64();
        let (jk, stats) = build_jk(
            &d, &pairs, &batches, &layout, &schedule, &cfg, &cfg, &model,
        );

        let reference = build_jk_reference(&d, &full_ordered_pairs(&shells), &layout);
        let dj = jk.j.sub(&reference.j).max_abs();
        let dk = jk.k.sub(&reference.k).max_abs();
        assert!(dj < 1e-10, "J differs from dense reference by {dj}");
        assert!(dk < 1e-10, "K differs from dense reference by {dk}");
        assert!(stats.fp64_quartets > 0);
        assert_eq!(stats.quantized_quartets, 0);
        assert!(stats.device_seconds > 0.0);
    }

    #[test]
    fn quantized_build_close_to_fp64() {
        let mol = builders::water();
        let shells = sto3g().shells_for(&mol);
        let layout = AoLayout::new(&shells);
        let d = test_density(layout.nao);
        let pairs = build_screened_pairs(&shells, 1e-12);
        let batches = batch_quartets(&pairs, 1e-14);
        let model = CostModel::new(DeviceSpec::a100());
        let fp64 = PipelineConfig::kernel_mako_fp64();
        let quant = PipelineConfig::quant_mako();

        let reference_schedule = QuantSchedule::fp64_reference(0.0);
        let (jk_ref, _) = build_jk(
            &d, &pairs, &batches, &layout, &reference_schedule, &fp64, &quant, &model,
        );

        // Early-SCF schedule: quantize everything moderate.
        let early = QuantSchedule::for_iteration(1.0, 1e-7);
        let (jk_q, stats) = build_jk(
            &d, &pairs, &batches, &layout, &early, &fp64, &quant, &model,
        );
        assert!(stats.quantized_quartets > 0, "schedule must quantize work");
        let dj = jk_ref.j.sub(&jk_q.j).max_abs() / jk_ref.j.max_abs();
        assert!(dj > 0.0, "quantized J must differ");
        assert!(dj < 1e-2, "quantized J relative error {dj}");
    }

    #[test]
    fn symmetry_of_jk() {
        let mol = builders::methane();
        let shells = sto3g().shells_for(&mol);
        let layout = AoLayout::new(&shells);
        let d = test_density(layout.nao);
        let pairs = build_screened_pairs(&shells, 1e-12);
        let batches = batch_quartets(&pairs, 1e-14);
        let model = CostModel::new(DeviceSpec::a100());
        let cfg = PipelineConfig::kernel_mako_fp64();
        let schedule = QuantSchedule::fp64_reference(0.0);
        let (jk, _) = build_jk(
            &d, &pairs, &batches, &layout, &schedule, &cfg, &cfg, &model,
        );
        assert!(jk.j.asymmetry() < 1e-12);
        assert!(jk.k.asymmetry() < 1e-12);
        // Energy-like traces are positive for a positive-ish density.
        assert!(jk.j.dot(&d) > 0.0);
        assert!(jk.k.dot(&d) > 0.0);
    }

    #[test]
    fn slot_axes_permutations_are_consistent() {
        assert_eq!(slot_axes(false, false, false), [0, 1, 2, 3]);
        assert_eq!(slot_axes(true, false, false), [1, 0, 2, 3]);
        assert_eq!(slot_axes(false, true, false), [0, 1, 3, 2]);
        assert_eq!(slot_axes(false, false, true), [2, 3, 0, 1]);
        assert_eq!(slot_axes(true, true, true), [3, 2, 1, 0]);
    }
}
