//! Coulomb (J) and exchange (K) matrix construction from shell-quartet
//! batches — the parallel Fock assembly engine.
//!
//! `J_{μν} = Σ_{λσ} D_{λσ} (μν|λσ)` and `K_{μλ} = Σ_{νσ} D_{νσ} (μν|λσ)`.
//!
//! Quartets are evaluated once per canonical arrangement (bra pair ≥ ket
//! pair, shell `i ≥ j` within a pair); the full 8-fold permutational sum is
//! recovered by explicitly scattering every *distinct ordered arrangement*
//! of the quartet. Contributions accumulate into FP64 buffers regardless of
//! the kernel precision — stage two of QuantMako's dual-stage accumulation.
//!
//! # The engine
//!
//! [`build_jk`] runs in three phases (plus an optional phase 0):
//!
//! 0. **incremental screen** (serial, cheap, optional): with
//!    [`FockEngineOptions::delta_tau`] set, quartets whose density-weighted
//!    Schwarz estimate `Q_ab·Q_cd·max|D_block|` falls below τ are dropped
//!    before scheduling — the direct-SCF difference-density screen. Skipped
//!    quartets never reach the device clock; their neglected contribution is
//!    bounded in [`FockBuildStats::skipped_bound`];
//! 1. **schedule split** (serial, cheap): every batch is split by the
//!    convergence-aware scheduler into an FP64 and a quantized sub-batch;
//! 2. **device clock** (serial, cheap): each non-empty sub-batch is priced
//!    as one batched launch via the cost model, and its group scale is
//!    frozen over the *full* sub-batch;
//! 3. **assembly** (parallel evaluate, ordered scatter): quartet tensors —
//!    the expensive stage — are evaluated across the rayon pool in bounded
//!    waves, then scattered into a single J/K buffer **strictly in
//!    canonical quartet order**.
//!
//! # Why the result is bitwise deterministic
//!
//! Quartet evaluation is a pure function of `(pair data, config, group
//! scale)`; the group scale is frozen over the full sub-batch in phase 2,
//! so a tensor's bits cannot depend on which thread computes it or how the
//! waves are cut. The scatter stage then replays every FP64 addition in
//! exactly the order the serial single-buffer pass uses. Parallelism only
//! changes *when* a tensor is computed, never the order of additions, so
//! `build_jk` matches [`build_jk_serial`] bitwise for every
//! `RAYON_NUM_THREADS` and every wave size.
//!
//! (The obvious alternative — per-thread partial J/K buffers merged in a
//! fixed order — is deterministic for a *fixed* chunk partition, but can
//! never be bitwise-equal to the serial oracle: merging partial sums
//! regroups the additions, `(a₁+a₂)+(a₃+a₄) ≠ ((a₁+a₂)+a₃)+a₄`, and two
//! chunks generally touch the same matrix element. Scatter is a few FMAs
//! per tensor element while evaluation is primitive loops plus GEMMs, so
//! serializing the scatter costs little and buys an exact contract.)
//!
//! The simulated `device_seconds` is summed in phase 2 in fixed sub-batch
//! order, so it is byte-identical too — host parallelism never touches the
//! device clock.

use mako_accel::CostModel;
use mako_chem::cart::nsph;
use mako_chem::AoLayout;
use mako_eri::batch::{EriClass, QuartetBatch};
use mako_eri::screening::{DensityBlockMax, ScreenedPair};
use mako_eri::tensor::Tensor4;
use mako_kernels::pipeline::{
    batch_device_seconds, batch_group_scale, run_batch, PipelineConfig, QuartetRunner,
};
use mako_linalg::Matrix;
use mako_quant::{ExecClass, QuantSchedule};
use rayon::prelude::*;
use std::sync::OnceLock;

/// The J and K matrices of one Fock build.
#[derive(Debug, Clone)]
pub struct JkMatrices {
    /// Coulomb matrix.
    pub j: Matrix,
    /// Exchange matrix.
    pub k: Matrix,
}

/// Bookkeeping from one Fock build.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FockBuildStats {
    /// Quartets evaluated in FP64.
    pub fp64_quartets: usize,
    /// Quartets evaluated with the quantized pipeline.
    pub quantized_quartets: usize,
    /// Quartets pruned by the scheduler.
    pub pruned_quartets: usize,
    /// Quartets skipped by the incremental ΔD Schwarz screen (phase 0) —
    /// dropped before scheduling and before the device clock prices any
    /// launch, so they cost nothing on either clock.
    pub skipped_quartets: usize,
    /// Analytic bound on the max-norm perturbation of J (and of K) from
    /// everything skipped: `Σ 8·n²·Q_ab·Q_cd·max|D_block|` over the skipped
    /// quartets, where n bounds the block edge. The incremental driver's
    /// drift cap and the conformance proptest both key on this.
    pub skipped_bound: f64,
    /// Simulated device seconds spent in ERI kernels.
    pub device_seconds: f64,
}

impl FockBuildStats {
    /// Quartets that actually ran (either pipeline).
    pub fn evaluated_quartets(&self) -> usize {
        self.fp64_quartets + self.quantized_quartets
    }

    /// Merge another build's counters (the distributed rank reduction). The
    /// device clock is summed — callers modelling concurrent ranks take the
    /// max separately.
    pub fn absorb(&mut self, other: &FockBuildStats) {
        self.fp64_quartets += other.fp64_quartets;
        self.quantized_quartets += other.quantized_quartets;
        self.pruned_quartets += other.pruned_quartets;
        self.skipped_quartets += other.skipped_quartets;
        self.skipped_bound += other.skipped_bound;
        self.device_seconds += other.device_seconds;
    }
}

/// Options for the parallel Fock assembly engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct FockEngineOptions {
    /// Quartet tensors evaluated (and buffered) per parallel wave; `None`
    /// picks a size adaptive to the current rayon pool. The wave size bounds
    /// scratch memory and sets the parallel granularity; it never changes
    /// the result (see the module docs).
    pub chunk_quartets: Option<usize>,
    /// Incremental (direct-SCF) screen: with `Some(τ)`, any quartet whose
    /// density-weighted Schwarz estimate `Q_ab·Q_cd·max|D_block|` falls
    /// below τ is skipped before scheduling (phase 0). Pass the *difference*
    /// density ΔD = D − D_ref as `density` and the estimates shrink as the
    /// SCF converges, so quartet work falls iteration over iteration. The
    /// neglected contributions are bounded in
    /// [`FockBuildStats::skipped_bound`]. The screen is a pure function of
    /// (density, bounds, τ), so determinism across thread counts is
    /// unaffected. `None` (default) disables it.
    pub delta_tau: Option<f64>,
}

/// One schedulable sub-batch: the quartets of one batch that share an
/// execution class (FP64 or quantized) and therefore one pipeline config.
pub(crate) struct SubUnit {
    pub(crate) class: EriClass,
    pub(crate) cfg: PipelineConfig,
    pub(crate) quartets: Vec<(usize, usize)>,
    pub(crate) e_scale: f64,
}

/// A scheduled-but-not-yet-executed Fock build: the output of phases 0–1
/// (ΔD screen + schedule split), before the device clock prices anything and
/// before any quartet is evaluated.
///
/// The split exists for the ensemble driver: it plans every member's build,
/// fuses same-`(EriClass, PipelineConfig)` sub-units *across members* into
/// shared launches for pricing, then assembles each member independently.
/// The solo path ([`build_jk_with_configs`]) runs `plan → price → assemble`
/// back-to-back and is bitwise (and byte-on-the-device-clock) identical to
/// the pre-split engine: the phases are the same code in the same order.
pub(crate) struct FockPlan {
    pub(crate) units: Vec<SubUnit>,
    pub(crate) stats: FockBuildStats,
    chunk_quartets: Option<usize>,
}

/// Phases 0–1 of the engine: the incremental ΔD Schwarz screen and the
/// convergence-aware schedule split, serial and deterministic. Emits the
/// `fock.screen` span. The returned plan's `stats.device_seconds` is zero
/// until the plan is priced.
pub(crate) fn plan_jk(
    density: &Matrix,
    pairs: &[ScreenedPair],
    batches: &[QuartetBatch],
    schedule: &QuantSchedule,
    cfg_for: impl Fn(usize) -> (PipelineConfig, PipelineConfig),
    layout: &AoLayout,
    opts: FockEngineOptions,
) -> FockPlan {
    let mut stats = FockBuildStats::default();
    let d_max = density.max_abs();
    // System-wide estimate scale for the relative FP64 bar: the largest
    // Schwarz product times the largest density element.
    let max_bound = pairs.iter().map(|p| p.bound).fold(0.0f64, f64::max);
    let scale = max_bound * max_bound * d_max.max(1e-30);

    // Phase 0 (incremental screen): per-shell-block density magnitudes,
    // built once per call. Only paid for when the ΔD screen is on.
    let mut screen_span = mako_trace::span("fock", "screen");
    let block_max = opts.delta_tau.map(|_| DensityBlockMax::build(density, layout));

    // Phase 1: split every batch by scheduling decision (bounds vary by
    // quartet). Serial and deterministic; integer bookkeeping only.
    let mut units: Vec<SubUnit> = Vec::new();
    for (bi, batch) in batches.iter().enumerate() {
        let (fp64_cfg, quant_cfg) = cfg_for(bi);
        let mut fp64_q = Vec::new();
        let mut quant_q = Vec::new();
        for &(pi, qi) in &batch.quartets {
            if let (Some(tau), Some(bm)) = (opts.delta_tau, &block_max) {
                let (pab, pcd) = (&pairs[pi], &pairs[qi]);
                // Shared estimate definition (incl. the 1e-30 density floor)
                // and the pinned boundary convention: only a strictly
                // smaller estimate skips; `est == tau` is still evaluated.
                let est = mako_eri::screening::schwarz_estimate(
                    pab.bound,
                    pcd.bound,
                    bm.quartet_max(pab.i, pab.j, pcd.i, pcd.j),
                );
                if est < tau {
                    // A skipped quartet perturbs any one J/K element by at
                    // most (arrangements ≤ 8) × (contracted elements ≤ n²)
                    // × est, with n the largest spherical block edge.
                    let nmax = nsph(batch.class.la)
                        .max(nsph(batch.class.lb))
                        .max(nsph(batch.class.lc))
                        .max(nsph(batch.class.ld));
                    stats.skipped_quartets += 1;
                    stats.skipped_bound += 8.0 * (nmax * nmax) as f64 * est;
                    continue;
                }
            }
            match schedule.decide(pairs[pi].bound, pairs[qi].bound, d_max, scale) {
                ExecClass::Pruned => stats.pruned_quartets += 1,
                ExecClass::Fp64 => fp64_q.push((pi, qi)),
                ExecClass::Quantized => quant_q.push((pi, qi)),
            }
        }
        stats.fp64_quartets += fp64_q.len();
        stats.quantized_quartets += quant_q.len();
        for (quartets, cfg) in [(fp64_q, fp64_cfg), (quant_q, quant_cfg)] {
            if !quartets.is_empty() {
                units.push(SubUnit {
                    class: batch.class,
                    cfg,
                    quartets,
                    e_scale: 1.0,
                });
            }
        }
    }

    if screen_span.is_recording() {
        screen_span.add_field("batches", batches.len());
        screen_span.add_field("sub_units", units.len());
        screen_span.add_field("fp64_quartets", stats.fp64_quartets);
        screen_span.add_field("quantized_quartets", stats.quantized_quartets);
        screen_span.add_field("skipped_quartets", stats.skipped_quartets);
        screen_span.add_field("pruned_quartets", stats.pruned_quartets);
    }
    screen_span.end();

    FockPlan {
        units,
        stats,
        chunk_quartets: opts.chunk_quartets,
    }
}

impl FockPlan {
    /// Phase 2 of the solo engine: price every sub-unit as ONE batched
    /// device launch (fixed sub-batch order, so the clock is byte-identical
    /// for any host parallelism), freeze the group scales, and emit the
    /// `fock.launch` instants. Sets `stats.device_seconds`.
    pub(crate) fn price(&mut self, pairs: &[ScreenedPair], model: &CostModel) {
        let trace_on = mako_trace::enabled();
        let mut device_seconds = 0.0;
        for u in &mut self.units {
            let launch_seconds =
                batch_device_seconds(&u.class, u.quartets.len(), &u.cfg, model);
            device_seconds += launch_seconds;
            u.e_scale = batch_group_scale(&u.quartets, pairs, &u.cfg);
            if trace_on {
                mako_trace::instant(
                    "fock",
                    "launch",
                    vec![
                        mako_trace::field("class", u.class.label()),
                        mako_trace::field("quartets", u.quartets.len()),
                        mako_trace::field("precision", format!("{:?}", u.cfg.precision)),
                        mako_trace::field("device_seconds", launch_seconds),
                    ],
                );
            }
        }
        self.stats.device_seconds = device_seconds;
    }

    /// Freeze the group scales only — for plans whose launches are priced
    /// *externally* (the ensemble driver fuses launches across molecules
    /// and writes each member's apportioned share back via
    /// [`FockPlan::set_device_seconds`]). The scales are per-molecule
    /// sub-batch properties and never fuse: a neighbor's operand magnitudes
    /// must not change this molecule's rounding.
    pub(crate) fn freeze_scales(&mut self, pairs: &[ScreenedPair]) {
        for u in &mut self.units {
            u.e_scale = batch_group_scale(&u.quartets, pairs, &u.cfg);
        }
    }

    /// Record an externally computed device-clock charge for this build
    /// (accounting only — nothing downstream of the clock reads it back
    /// into the numerics).
    pub(crate) fn set_device_seconds(&mut self, seconds: f64) {
        self.stats.device_seconds = seconds;
    }

    /// Phase 3: parallel evaluation, ordered scatter (module docs). Requires
    /// the group scales to be frozen ([`FockPlan::price`] or
    /// [`FockPlan::freeze_scales`]). Emits the `fock.assemble` instant.
    pub(crate) fn assemble(
        &self,
        density: &Matrix,
        pairs: &[ScreenedPair],
        layout: &AoLayout,
    ) -> JkMatrices {
        let n = layout.nao;
        let trace_on = mako_trace::enabled();
        let threads = rayon::current_num_threads().max(1);
        let wave_len = self
            .chunk_quartets
            .unwrap_or_else(|| (threads * 64).clamp(64, 4096))
            .max(1);

        let mut j = Matrix::zeros(n, n);
        let mut k = Matrix::zeros(n, n);
        let mut scratch: Vec<Tensor4> = Vec::new();
        // Host-side wall timers for the evaluate/scatter phases. Only
        // sampled when tracing is on, so the untraced hot path pays zero
        // clock reads.
        let (mut evaluate_seconds, mut scatter_seconds) = (0.0f64, 0.0f64);
        for u in &self.units {
            // `for_pairs` carries the sub-unit's rounded-operand cache: each
            // screened pair's E blocks are rounded at the group scale once
            // and shared across every quartet (and wave) of the sub-unit.
            let runner = QuartetRunner::for_pairs(&u.class, &u.cfg, u.e_scale, pairs.len());
            for wave in u.quartets.chunks(wave_len) {
                scratch.truncate(wave.len());
                scratch.resize_with(wave.len(), || Tensor4::zeros([0; 4]));
                let t_eval = trace_on.then(std::time::Instant::now);
                scratch
                    .par_iter_mut()
                    .zip(wave.par_iter())
                    .for_each(|(t, &(pi, qi))| runner.run_indexed(pairs, pi, qi, t));
                if let Some(t0) = t_eval {
                    evaluate_seconds += t0.elapsed().as_secs_f64();
                }
                let t_scatter = trace_on.then(std::time::Instant::now);
                for (t, &(pi, qi)) in scratch.iter().zip(wave) {
                    scatter_quartet(t, &pairs[pi], &pairs[qi], density, layout, &mut j, &mut k);
                }
                if let Some(t0) = t_scatter {
                    scatter_seconds += t0.elapsed().as_secs_f64();
                }
            }
        }
        if trace_on {
            mako_trace::instant(
                "fock",
                "assemble",
                vec![
                    mako_trace::field("evaluate_seconds", evaluate_seconds),
                    mako_trace::field("scatter_seconds", scatter_seconds),
                    mako_trace::field("device_seconds", self.stats.device_seconds),
                    mako_trace::field("wave_len", wave_len),
                ],
            );
        }

        j.symmetrize();
        k.symmetrize();
        JkMatrices { j, k }
    }
}

/// Build J and K for density `D` from pre-batched quartets.
///
/// * `schedule` decides per batch sub-population whether to run FP64,
///   quantized, or prune (QuantMako's convergence-aware scheduling);
/// * `fp64_cfg` / `quant_cfg` are the tuned pipeline configurations
///   (typically from `mako-compiler`'s kernel cache);
/// * the returned stats carry the simulated device time.
///
/// Assembly runs across the current rayon pool; the result is bitwise
/// identical to [`build_jk_serial`] for any thread count.
#[allow(clippy::too_many_arguments)]
pub fn build_jk(
    density: &Matrix,
    pairs: &[ScreenedPair],
    batches: &[QuartetBatch],
    layout: &AoLayout,
    schedule: &QuantSchedule,
    fp64_cfg: &PipelineConfig,
    quant_cfg: &PipelineConfig,
    model: &CostModel,
) -> (JkMatrices, FockBuildStats) {
    build_jk_with_configs(
        density,
        pairs,
        batches,
        layout,
        schedule,
        |_| (*fp64_cfg, *quant_cfg),
        model,
        FockEngineOptions::default(),
    )
}

/// The assembly engine with per-batch pipeline configurations: `cfg_for(bi)`
/// returns the (FP64, quantized) configs for batch `bi` — the form the SCF
/// driver and the distributed cluster driver share.
#[allow(clippy::too_many_arguments)]
pub fn build_jk_with_configs(
    density: &Matrix,
    pairs: &[ScreenedPair],
    batches: &[QuartetBatch],
    layout: &AoLayout,
    schedule: &QuantSchedule,
    cfg_for: impl Fn(usize) -> (PipelineConfig, PipelineConfig),
    model: &CostModel,
    opts: FockEngineOptions,
) -> (JkMatrices, FockBuildStats) {
    let mut plan = plan_jk(density, pairs, batches, schedule, cfg_for, layout, opts);
    plan.price(pairs, model);
    let jk = plan.assemble(density, pairs, layout);
    (jk, plan.stats)
}

/// The serial reference assembly: one thread, one pass, one J/K buffer —
/// the pre-engine implementation, kept as the determinism oracle and the
/// benchmark baseline. [`build_jk`] must match it bitwise.
#[allow(clippy::too_many_arguments)]
pub fn build_jk_serial(
    density: &Matrix,
    pairs: &[ScreenedPair],
    batches: &[QuartetBatch],
    layout: &AoLayout,
    schedule: &QuantSchedule,
    fp64_cfg: &PipelineConfig,
    quant_cfg: &PipelineConfig,
    model: &CostModel,
) -> (JkMatrices, FockBuildStats) {
    let n = layout.nao;
    let mut j = Matrix::zeros(n, n);
    let mut k = Matrix::zeros(n, n);
    let mut stats = FockBuildStats::default();
    let d_max = density.max_abs();
    let max_bound = pairs.iter().map(|p| p.bound).fold(0.0f64, f64::max);
    let scale = max_bound * max_bound * d_max.max(1e-30);

    for batch in batches {
        let mut fp64_batch = QuartetBatch {
            class: batch.class,
            quartets: Vec::new(),
        };
        let mut quant_batch = QuartetBatch {
            class: batch.class,
            quartets: Vec::new(),
        };
        for &(pi, qi) in &batch.quartets {
            match schedule.decide(pairs[pi].bound, pairs[qi].bound, d_max, scale) {
                ExecClass::Pruned => stats.pruned_quartets += 1,
                ExecClass::Fp64 => fp64_batch.quartets.push((pi, qi)),
                ExecClass::Quantized => quant_batch.quartets.push((pi, qi)),
            }
        }
        stats.fp64_quartets += fp64_batch.len();
        stats.quantized_quartets += quant_batch.len();

        for (sub, cfg) in [(&fp64_batch, fp64_cfg), (&quant_batch, quant_cfg)] {
            if sub.is_empty() {
                continue;
            }
            let out = run_batch(sub, pairs, cfg, model);
            stats.device_seconds += out.seconds;
            for (t, &(pi, qi)) in out.tensors.iter().zip(&sub.quartets) {
                scatter_quartet(
                    t,
                    &pairs[pi],
                    &pairs[qi],
                    density,
                    layout,
                    &mut j,
                    &mut k,
                );
            }
        }
    }

    j.symmetrize();
    k.symmetrize();
    (JkMatrices { j, k }, stats)
}

/// For an arrangement produced by the three swaps, gives for each
/// arrangement slot (A', B', C', D') the original tensor axis it reads.
pub fn slot_axes(s_ab: bool, s_cd: bool, braket: bool) -> [usize; 4] {
    let mut axes = [0usize, 1, 2, 3];
    if s_ab {
        axes.swap(0, 1);
    }
    if s_cd {
        axes.swap(2, 3);
    }
    if braket {
        axes.swap(0, 2);
        axes.swap(1, 3);
    }
    axes
}

/// The distinct ordered arrangements of one symmetry case, in canonical
/// enumeration order: each entry is the `slot_axes` mapping of one
/// arrangement that survives dedup.
pub type ArrangementTable = Vec<[usize; 4]>;

/// Symmetry case of a quartet `(sa, sb | sc, sd)`: which of the four
/// equalities that can collapse arrangements hold. Only these four matter —
/// an arrangement collision requires the relating permutation to lie in the
/// dihedral group generated by the three swaps, and every element of that
/// group fixes the shell tuple iff one of these pair conditions (or their
/// conjunction) holds. Stray coincidences like `sa == sc` alone relate no
/// two arrangements and need no case of their own.
#[inline]
pub fn symmetry_case(sa: usize, sb: usize, sc: usize, sd: usize) -> usize {
    usize::from(sa == sb)
        | usize::from(sc == sd) << 1
        | usize::from(sa == sc && sb == sd) << 2
        | usize::from(sa == sd && sb == sc) << 3
}

/// Dedup table for one representative shell assignment, built with the same
/// enumeration (braket outer, then bra swap, then ket swap; first occurrence
/// wins) the original `HashSet` implementation used.
pub fn build_arrangement_table(shells: &[usize; 4]) -> ArrangementTable {
    let mut seen: Vec<[usize; 4]> = Vec::with_capacity(8);
    let mut table = Vec::with_capacity(8);
    for braket in [false, true] {
        for s_ab in [false, true] {
            for s_cd in [false, true] {
                let axes = slot_axes(s_ab, s_cd, braket);
                let tuple = [
                    shells[axes[0]],
                    shells[axes[1]],
                    shells[axes[2]],
                    shells[axes[3]],
                ];
                if seen.contains(&tuple) {
                    continue;
                }
                seen.push(tuple);
                table.push(axes);
            }
        }
    }
    table
}

/// The 16 precomputed arrangement tables, one per symmetry case. Replaces
/// the per-quartet `HashSet` dedup in the innermost scatter loop with a
/// table lookup; built once, lazily, from representative assignments.
pub fn arrangement_tables() -> &'static [ArrangementTable; 16] {
    static TABLES: OnceLock<[ArrangementTable; 16]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut tables: [ArrangementTable; 16] = std::array::from_fn(|_| Vec::new());
        // Sweep all shell assignments over 4 symbols: every feasible case
        // appears, and the dedup pattern depends only on the case.
        for code in 0..256usize {
            let shells = [code & 3, (code >> 2) & 3, (code >> 4) & 3, (code >> 6) & 3];
            let case = symmetry_case(shells[0], shells[1], shells[2], shells[3]);
            if tables[case].is_empty() {
                tables[case] = build_arrangement_table(&shells);
            }
        }
        tables
    })
}

/// Scatter one canonical quartet into J and K over all distinct ordered
/// shell arrangements (the explicit 8-fold permutational sum). The
/// arrangement set comes from the precomputed symmetry-case table — no
/// allocation, no hashing in the hot loop — and is traversed in the same
/// order as the original dedup, so accumulation order (and hence every bit)
/// is preserved.
fn scatter_quartet(
    t: &Tensor4,
    pab: &ScreenedPair,
    pcd: &ScreenedPair,
    d: &Matrix,
    layout: &AoLayout,
    j: &mut Matrix,
    k: &mut Matrix,
) {
    let (sa, sb, sc, sd) = (pab.i, pab.j, pcd.i, pcd.j);
    let dims = t.dims;
    let strides = [
        dims[1] * dims[2] * dims[3],
        dims[2] * dims[3],
        dims[3],
        1usize,
    ];
    let offs = [
        layout.shell_offsets[sa],
        layout.shell_offsets[sb],
        layout.shell_offsets[sc],
        layout.shell_offsets[sd],
    ];
    let data = &t.data;

    for axes in arrangement_tables()[symmetry_case(sa, sb, sc, sd)].iter() {
        let (m1, m2, m3, m4) = (dims[axes[0]], dims[axes[1]], dims[axes[2]], dims[axes[3]]);
        let (st1, st2, st3, st4) = (
            strides[axes[0]],
            strides[axes[1]],
            strides[axes[2]],
            strides[axes[3]],
        );
        let (o1, o2, o3, o4) = (offs[axes[0]], offs[axes[1]], offs[axes[2]], offs[axes[3]]);
        for i1 in 0..m1 {
            let b1 = i1 * st1;
            for i2 in 0..m2 {
                let b2 = b1 + i2 * st2;
                for i3 in 0..m3 {
                    let b3 = b2 + i3 * st3;
                    for i4 in 0..m4 {
                        let v = data[b3 + i4 * st4];
                        if v == 0.0 {
                            continue;
                        }
                        // J_{μν} += D_{λσ} (μν|λσ)
                        j[(o1 + i1, o2 + i2)] += d[(o3 + i3, o4 + i4)] * v;
                        // K_{μλ} += D_{νσ} (μν|λσ)
                        k[(o1 + i1, o3 + i3)] += d[(o2 + i2, o4 + i4)] * v;
                    }
                }
            }
        }
    }
}

/// Reference J/K build: dense full AO ERI contraction via the FP64 MMD
/// engine with no symmetry tricks — O(N⁴) memory-free quadruple loop over
/// shell quartets in all orders. Only usable for small systems; the unit
/// tests validate [`build_jk`] against it.
pub fn build_jk_reference(density: &Matrix, pairs_full: &[ScreenedPair], layout: &AoLayout) -> JkMatrices {
    use mako_eri::mmd::eri_quartet_mmd;
    let n = layout.nao;
    let mut j = Matrix::zeros(n, n);
    let mut k = Matrix::zeros(n, n);
    for pab in pairs_full {
        for pcd in pairs_full {
            let t = eri_quartet_mmd(&pab.data, &pcd.data);
            let (oa, ob, oc, od) = (
                layout.shell_offsets[pab.i],
                layout.shell_offsets[pab.j],
                layout.shell_offsets[pcd.i],
                layout.shell_offsets[pcd.j],
            );
            for a in 0..t.dims[0] {
                for b in 0..t.dims[1] {
                    for c in 0..t.dims[2] {
                        for dd in 0..t.dims[3] {
                            let v = t.get(a, b, c, dd);
                            j[(oa + a, ob + b)] += density[(oc + c, od + dd)] * v;
                            k[(oa + a, oc + c)] += density[(ob + b, od + dd)] * v;
                        }
                    }
                }
            }
        }
    }
    JkMatrices { j, k }
}

/// Where a non-finite Fock build came from: the input density itself, or
/// the first quartet whose ERI tensor evaluates to NaN/Inf.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NonFiniteSite {
    /// The *input* density already carried NaN/Inf — the ERI batches are
    /// innocent.
    pub density_poisoned: bool,
    /// Index of the first offending batch, when a quartet is to blame.
    pub batch: Option<usize>,
    /// Display label of the offending batch's ERI class.
    pub class: Option<String>,
    /// The offending quartet's screened-pair indices `(pi, qi)`.
    pub quartet: Option<(usize, usize)>,
}

/// Post-mortem attribution of a non-finite J/K build (the SCF driver's
/// non-finite containment, DESIGN.md §12): re-evaluates the quartet
/// population serially in FP64 and reports the first tensor that goes
/// non-finite, or flags the input density itself. Runs only on the failure
/// path — the hot assembly loop stays untouched — so the cost (one serial
/// full build) is irrelevant. A default (all-`None`) site means the
/// poison appeared downstream of the ERI contraction (e.g. injected).
pub fn attribute_non_finite(
    density: &Matrix,
    pairs: &[ScreenedPair],
    batches: &[QuartetBatch],
) -> NonFiniteSite {
    if !density.all_finite() {
        return NonFiniteSite {
            density_poisoned: true,
            ..NonFiniteSite::default()
        };
    }
    let cfg = PipelineConfig::kernel_mako_fp64();
    let mut t = Tensor4::zeros([0; 4]);
    for (bi, batch) in batches.iter().enumerate() {
        let runner = QuartetRunner::new(&batch.class, &cfg, 1.0);
        for &(pi, qi) in &batch.quartets {
            runner.run_into(&pairs[pi], &pairs[qi], &mut t);
            if !t.data.iter().all(|v| v.is_finite()) {
                return NonFiniteSite {
                    density_poisoned: false,
                    batch: Some(bi),
                    class: Some(batch.class.label()),
                    quartet: Some((pi, qi)),
                };
            }
        }
    }
    NonFiniteSite::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mako_accel::DeviceSpec;
    use mako_chem::basis::sto3g::sto3g;
    use mako_chem::builders;
    use mako_eri::batch::batch_quartets;
    use mako_eri::screening::build_screened_pairs;
    use std::collections::HashSet;

    /// All ordered shell pairs (for the reference build).
    fn full_ordered_pairs(shells: &[mako_chem::Shell]) -> Vec<ScreenedPair> {
        let mut out = Vec::new();
        for i in 0..shells.len() {
            for j in 0..shells.len() {
                let data = mako_eri::mmd::shell_pair(&shells[i], &shells[j]);
                let bound = mako_eri::screening::schwarz_bound(&data);
                out.push(ScreenedPair { i, j, data, bound });
            }
        }
        out
    }

    fn test_density(n: usize) -> Matrix {
        // A symmetric, positive-ish density-like matrix.
        let mut d = Matrix::from_fn(n, n, |i, j| {
            0.5 / (1.0 + (i as f64 - j as f64).abs())
        });
        d.symmetrize();
        d
    }

    /// The pre-table scatter: per-quartet `HashSet` dedup, exactly the
    /// implementation the arrangement tables replaced. Oracle for
    /// `table_scatter_matches_hashset_dedup`.
    fn scatter_quartet_hashset(
        t: &Tensor4,
        pab: &ScreenedPair,
        pcd: &ScreenedPair,
        d: &Matrix,
        layout: &AoLayout,
        j: &mut Matrix,
        k: &mut Matrix,
    ) {
        let (sa, sb, sc, sd) = (pab.i, pab.j, pcd.i, pcd.j);
        let [na, nb, nc, nd] = t.dims;
        let mut seen: HashSet<(usize, usize, usize, usize)> = HashSet::new();
        for braket in [false, true] {
            for s_ab in [false, true] {
                for s_cd in [false, true] {
                    let (mut qa, mut qb, mut qc, mut qd) = (sa, sb, sc, sd);
                    if s_ab {
                        std::mem::swap(&mut qa, &mut qb);
                    }
                    if s_cd {
                        std::mem::swap(&mut qc, &mut qd);
                    }
                    if braket {
                        std::mem::swap(&mut qa, &mut qc);
                        std::mem::swap(&mut qb, &mut qd);
                    }
                    if !seen.insert((qa, qb, qc, qd)) {
                        continue;
                    }
                    let off = |s: usize| layout.shell_offsets[s];
                    let (o1, o2, o3, o4) = (off(qa), off(qb), off(qc), off(qd));
                    let axes = slot_axes(s_ab, s_cd, braket);
                    let dim_of = |orig: usize| match orig {
                        0 => na,
                        1 => nb,
                        2 => nc,
                        _ => nd,
                    };
                    let (m1, m2, m3, m4) = (
                        dim_of(axes[0]),
                        dim_of(axes[1]),
                        dim_of(axes[2]),
                        dim_of(axes[3]),
                    );
                    for i1 in 0..m1 {
                        for i2 in 0..m2 {
                            for i3 in 0..m3 {
                                for i4 in 0..m4 {
                                    let mut idx = [0usize; 4];
                                    idx[axes[0]] = i1;
                                    idx[axes[1]] = i2;
                                    idx[axes[2]] = i3;
                                    idx[axes[3]] = i4;
                                    let v = t.get(idx[0], idx[1], idx[2], idx[3]);
                                    if v == 0.0 {
                                        continue;
                                    }
                                    j[(o1 + i1, o2 + i2)] += d[(o3 + i3, o4 + i4)] * v;
                                    k[(o1 + i1, o3 + i3)] += d[(o2 + i2, o4 + i4)] * v;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn bits_equal(a: &Matrix, b: &Matrix) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn jk_matches_dense_reference_water() {
        let mol = builders::water();
        let shells = sto3g().shells_for(&mol);
        let layout = AoLayout::new(&shells);
        let d = test_density(layout.nao);

        let pairs = build_screened_pairs(&shells, 1e-12);
        let batches = batch_quartets(&pairs, 1e-14);
        let schedule = QuantSchedule::fp64_reference(0.0);
        let model = CostModel::new(DeviceSpec::a100());
        let cfg = PipelineConfig::kernel_mako_fp64();
        let (jk, stats) = build_jk(
            &d, &pairs, &batches, &layout, &schedule, &cfg, &cfg, &model,
        );

        let reference = build_jk_reference(&d, &full_ordered_pairs(&shells), &layout);
        let dj = jk.j.sub(&reference.j).max_abs();
        let dk = jk.k.sub(&reference.k).max_abs();
        assert!(dj < 1e-10, "J differs from dense reference by {dj}");
        assert!(dk < 1e-10, "K differs from dense reference by {dk}");
        assert!(stats.fp64_quartets > 0);
        assert_eq!(stats.quantized_quartets, 0);
        assert!(stats.device_seconds > 0.0);
    }

    #[test]
    fn non_finite_attribution_blames_density_or_nothing() {
        let mol = builders::water();
        let shells = sto3g().shells_for(&mol);
        let layout = AoLayout::new(&shells);
        let pairs = build_screened_pairs(&shells, 1e-12);
        let batches = batch_quartets(&pairs, 1e-14);

        // A poisoned input density is identified as the culprit.
        let mut d = test_density(layout.nao);
        d[(0, 0)] = f64::NAN;
        let site = attribute_non_finite(&d, &pairs, &batches);
        assert!(site.density_poisoned);
        assert_eq!(site.batch, None);

        // A clean density over clean batches blames nobody: the poison
        // (when the driver saw one) appeared downstream of the ERIs.
        let clean = attribute_non_finite(&test_density(layout.nao), &pairs, &batches);
        assert_eq!(clean, NonFiniteSite::default());
        assert!(!clean.density_poisoned);
    }

    #[test]
    fn quantized_build_close_to_fp64() {
        let mol = builders::water();
        let shells = sto3g().shells_for(&mol);
        let layout = AoLayout::new(&shells);
        let d = test_density(layout.nao);
        let pairs = build_screened_pairs(&shells, 1e-12);
        let batches = batch_quartets(&pairs, 1e-14);
        let model = CostModel::new(DeviceSpec::a100());
        let fp64 = PipelineConfig::kernel_mako_fp64();
        let quant = PipelineConfig::quant_mako();

        let reference_schedule = QuantSchedule::fp64_reference(0.0);
        let (jk_ref, _) = build_jk(
            &d, &pairs, &batches, &layout, &reference_schedule, &fp64, &quant, &model,
        );

        // Early-SCF schedule: quantize everything moderate.
        let early = QuantSchedule::for_iteration(1.0, 1e-7);
        let (jk_q, stats) = build_jk(
            &d, &pairs, &batches, &layout, &early, &fp64, &quant, &model,
        );
        assert!(stats.quantized_quartets > 0, "schedule must quantize work");
        let dj = jk_ref.j.sub(&jk_q.j).max_abs() / jk_ref.j.max_abs();
        assert!(dj > 0.0, "quantized J must differ");
        assert!(dj < 1e-2, "quantized J relative error {dj}");
    }

    #[test]
    fn symmetry_of_jk() {
        let mol = builders::methane();
        let shells = sto3g().shells_for(&mol);
        let layout = AoLayout::new(&shells);
        let d = test_density(layout.nao);
        let pairs = build_screened_pairs(&shells, 1e-12);
        let batches = batch_quartets(&pairs, 1e-14);
        let model = CostModel::new(DeviceSpec::a100());
        let cfg = PipelineConfig::kernel_mako_fp64();
        let schedule = QuantSchedule::fp64_reference(0.0);
        let (jk, _) = build_jk(
            &d, &pairs, &batches, &layout, &schedule, &cfg, &cfg, &model,
        );
        assert!(jk.j.asymmetry() < 1e-12);
        assert!(jk.k.asymmetry() < 1e-12);
        // Energy-like traces are positive for a positive-ish density.
        assert!(jk.j.dot(&d) > 0.0);
        assert!(jk.k.dot(&d) > 0.0);
    }

    #[test]
    fn slot_axes_permutations_are_consistent() {
        assert_eq!(slot_axes(false, false, false), [0, 1, 2, 3]);
        assert_eq!(slot_axes(true, false, false), [1, 0, 2, 3]);
        assert_eq!(slot_axes(false, true, false), [0, 1, 3, 2]);
        assert_eq!(slot_axes(false, false, true), [2, 3, 0, 1]);
        assert_eq!(slot_axes(true, true, true), [3, 2, 1, 0]);
    }

    #[test]
    fn arrangement_tables_match_hashset_dedup_for_every_assignment() {
        // For every shell assignment over 4 symbols (256 of them — every
        // equality pattern, including stray coincidences like sa == sc
        // alone), the case table must reproduce the HashSet dedup exactly:
        // same arrangements, same order.
        for code in 0..256usize {
            let s = [code & 3, (code >> 2) & 3, (code >> 4) & 3, (code >> 6) & 3];
            let expected = build_arrangement_table(&s);
            let got = &arrangement_tables()[symmetry_case(s[0], s[1], s[2], s[3])];
            assert_eq!(got, &expected, "assignment {s:?}");
        }
        // Spot-check cardinalities: fully asymmetric → 8, fully symmetric → 1.
        assert_eq!(arrangement_tables()[symmetry_case(0, 1, 2, 3)].len(), 8);
        assert_eq!(arrangement_tables()[symmetry_case(0, 0, 0, 0)].len(), 1);
        assert_eq!(arrangement_tables()[symmetry_case(0, 0, 1, 2)].len(), 4);
        assert_eq!(arrangement_tables()[symmetry_case(0, 1, 0, 1)].len(), 4);
    }

    #[test]
    fn table_scatter_matches_hashset_dedup() {
        // An asymmetric quartet set with every symmetry case represented:
        // i == j pairs, distinct pairs, bra == ket quartets, crossed
        // quartets. J/K from the table scatter must equal the HashSet
        // scatter bitwise.
        let mol = builders::methane();
        let shells = sto3g().shells_for(&mol);
        let layout = AoLayout::new(&shells);
        let d = test_density(layout.nao);
        let pairs = build_screened_pairs(&shells, 1e-12);

        let n = layout.nao;
        let (mut j_new, mut k_new) = (Matrix::zeros(n, n), Matrix::zeros(n, n));
        let (mut j_old, mut k_old) = (Matrix::zeros(n, n), Matrix::zeros(n, n));
        let mut cases_seen = HashSet::new();
        for (pi, pab) in pairs.iter().enumerate() {
            for pcd in pairs.iter().take(pi + 1) {
                let t = mako_eri::mmd::eri_quartet_mmd(&pab.data, &pcd.data);
                cases_seen.insert(symmetry_case(pab.i, pab.j, pcd.i, pcd.j));
                scatter_quartet(&t, pab, pcd, &d, &layout, &mut j_new, &mut k_new);
                scatter_quartet_hashset(&t, pab, pcd, &d, &layout, &mut j_old, &mut k_old);
            }
        }
        assert!(cases_seen.len() >= 4, "want diverse symmetry cases: {cases_seen:?}");
        assert!(bits_equal(&j_new, &j_old), "J diverged from HashSet dedup");
        assert!(bits_equal(&k_new, &k_old), "K diverged from HashSet dedup");
    }

    #[test]
    fn parallel_build_is_bitwise_deterministic_across_thread_counts() {
        let mol = builders::methane();
        let shells = sto3g().shells_for(&mol);
        let layout = AoLayout::new(&shells);
        let d = test_density(layout.nao);
        let pairs = build_screened_pairs(&shells, 1e-12);
        let batches = batch_quartets(&pairs, 1e-14);
        let model = CostModel::new(DeviceSpec::a100());
        let fp64 = PipelineConfig::kernel_mako_fp64();
        let quant = PipelineConfig::quant_mako();
        // Mixed schedule so both pipelines and the pruning path all run.
        let schedule = QuantSchedule::for_iteration(1.0, 1e-7);

        let (jk_serial, st_serial) = build_jk_serial(
            &d, &pairs, &batches, &layout, &schedule, &fp64, &quant, &model,
        );
        assert!(st_serial.quantized_quartets > 0 && st_serial.fp64_quartets > 0);

        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let (jk, st) = pool.install(|| {
                build_jk(&d, &pairs, &batches, &layout, &schedule, &fp64, &quant, &model)
            });
            assert!(
                bits_equal(&jk.j, &jk_serial.j),
                "J not bitwise equal at {threads} threads"
            );
            assert!(
                bits_equal(&jk.k, &jk_serial.k),
                "K not bitwise equal at {threads} threads"
            );
            assert_eq!(st, st_serial, "stats drifted at {threads} threads");
            assert_eq!(
                st.device_seconds.to_bits(),
                st_serial.device_seconds.to_bits(),
                "device clock drifted at {threads} threads"
            );
        }
    }

    #[test]
    fn delta_screen_zero_tau_is_bitwise_inert() {
        // τ = 0 skips nothing (est < 0 is never true), so the build must be
        // bitwise identical to the default-options engine.
        let mol = builders::water();
        let shells = sto3g().shells_for(&mol);
        let layout = AoLayout::new(&shells);
        let d = test_density(layout.nao);
        let pairs = build_screened_pairs(&shells, 1e-12);
        let batches = batch_quartets(&pairs, 1e-14);
        let model = CostModel::new(DeviceSpec::a100());
        let cfg = PipelineConfig::kernel_mako_fp64();
        let schedule = QuantSchedule::fp64_reference(0.0);
        let run = |tau: Option<f64>| {
            build_jk_with_configs(
                &d,
                &pairs,
                &batches,
                &layout,
                &schedule,
                |_| (cfg, cfg),
                &model,
                FockEngineOptions { chunk_quartets: None, delta_tau: tau },
            )
        };
        let (base, st_base) = run(None);
        let (zero, st_zero) = run(Some(0.0));
        assert!(bits_equal(&base.j, &zero.j) && bits_equal(&base.k, &zero.k));
        assert_eq!(st_zero.skipped_quartets, 0);
        assert_eq!(st_zero.skipped_bound, 0.0);
        assert_eq!(st_base, st_zero);
    }

    #[test]
    fn delta_screen_error_within_analytic_bound_and_saves_device_time() {
        let mol = builders::water();
        let shells = sto3g().shells_for(&mol);
        let layout = AoLayout::new(&shells);
        // A small difference-density-like matrix: mid-SCF ΔD magnitudes.
        let mut d = Matrix::from_fn(layout.nao, layout.nao, |i, j| {
            1e-4 * ((i * 7 + j * 3) % 11) as f64 / (1.0 + (i as f64 - j as f64).abs())
        });
        d.symmetrize();
        let pairs = build_screened_pairs(&shells, 1e-12);
        let batches = batch_quartets(&pairs, 1e-14);
        let model = CostModel::new(DeviceSpec::a100());
        let cfg = PipelineConfig::kernel_mako_fp64();
        let schedule = QuantSchedule::fp64_reference(0.0);
        let run = |tau: Option<f64>| {
            build_jk_with_configs(
                &d,
                &pairs,
                &batches,
                &layout,
                &schedule,
                |_| (cfg, cfg),
                &model,
                FockEngineOptions { chunk_quartets: None, delta_tau: tau },
            )
        };
        let (full, st_full) = run(Some(0.0));
        let tau = 1e-7;
        let (scr, st_scr) = run(Some(tau));
        assert!(st_scr.skipped_quartets > 0, "screen must engage");
        assert!(
            st_scr.evaluated_quartets() < st_full.evaluated_quartets(),
            "screened build must run less work"
        );
        assert!(
            st_scr.device_seconds < st_full.device_seconds,
            "skipped quartets must come off the device clock: {} !< {}",
            st_scr.device_seconds,
            st_full.device_seconds
        );
        let dj = full.j.sub(&scr.j).max_abs();
        let dk = full.k.sub(&scr.k).max_abs();
        assert!(
            dj <= st_scr.skipped_bound && dk <= st_scr.skipped_bound,
            "screen error (J {dj:e}, K {dk:e}) exceeds analytic bound {:e}",
            st_scr.skipped_bound
        );
    }

    #[test]
    fn delta_screen_is_deterministic_across_thread_counts() {
        let mol = builders::methane();
        let shells = sto3g().shells_for(&mol);
        let layout = AoLayout::new(&shells);
        // Block-sparse ΔD: only the (0,0) AO entry is nonzero, so quartets
        // not touching shell 0 have an exactly-zero density-weighted
        // estimate and are guaranteed to skip, while (00|00)-like quartets
        // are guaranteed to run — a deterministic mix at any τ > 0.
        let mut d = Matrix::zeros(layout.nao, layout.nao);
        d[(0, 0)] = 0.5;
        let pairs = build_screened_pairs(&shells, 1e-12);
        let batches = batch_quartets(&pairs, 1e-14);
        let model = CostModel::new(DeviceSpec::a100());
        let cfg = PipelineConfig::kernel_mako_fp64();
        let schedule = QuantSchedule::fp64_reference(0.0);
        let opts = FockEngineOptions { chunk_quartets: None, delta_tau: Some(1e-12) };
        let run = || {
            build_jk_with_configs(
                &d, &pairs, &batches, &layout, &schedule, |_| (cfg, cfg), &model, opts,
            )
        };
        let (base, st_base) = run();
        assert!(st_base.skipped_quartets > 0);
        for threads in [2usize, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let (jk, st) = pool.install(run);
            assert!(bits_equal(&jk.j, &base.j), "{threads} threads changed J");
            assert!(bits_equal(&jk.k, &base.k), "{threads} threads changed K");
            assert_eq!(st, st_base);
        }
    }

    #[test]
    fn chunk_size_never_changes_bits() {
        let mol = builders::water();
        let shells = sto3g().shells_for(&mol);
        let layout = AoLayout::new(&shells);
        let d = test_density(layout.nao);
        let pairs = build_screened_pairs(&shells, 1e-12);
        let batches = batch_quartets(&pairs, 1e-14);
        let model = CostModel::new(DeviceSpec::a100());
        let cfg = PipelineConfig::kernel_mako_fp64();
        let schedule = QuantSchedule::fp64_reference(0.0);

        let run = |chunk: Option<usize>| {
            build_jk_with_configs(
                &d,
                &pairs,
                &batches,
                &layout,
                &schedule,
                |_| (cfg, cfg),
                &model,
                FockEngineOptions { chunk_quartets: chunk, delta_tau: None },
            )
        };
        let (base, st_base) = run(None);
        for chunk in [1usize, 3, 17, 100_000] {
            let (jk, st) = run(Some(chunk));
            assert!(bits_equal(&jk.j, &base.j), "chunk {chunk} changed J bits");
            assert!(bits_equal(&jk.k, &base.k), "chunk {chunk} changed K bits");
            assert_eq!(st, st_base);
        }
    }
}
