//! Multi-GPU scaling model for the Figure 10 experiment.
//!
//! The paper distributes the Fock build over MPI ranks (one per GPU),
//! allreduces the Fock matrix every iteration, and replicates the
//! diagonalization. At ubiquitin scale (1,231 atoms, def2-TZVP ≈ 25k basis
//! functions) the quartet batches cannot be enumerated explicitly on a CPU,
//! so this module builds a **statistical workload model**: shells are
//! instantiated for real, pair survival is estimated from the Gaussian
//! overlap decay (the same quantity Schwarz screening keys on), per-class
//! quartet counts follow from pair-class populations, and per-batch costs
//! come from the architecture-tuned kernel configurations.

use crate::fock::{build_jk_with_configs, FockBuildStats, FockEngineOptions, JkMatrices};
use mako_accel::cluster::{
    parallel_efficiency, partition_lpt, simulate_iteration, ClusterSpec, ParallelTiming,
};
use mako_accel::CostModel;
use mako_chem::molecule::dist;
use mako_chem::{BasisSet, Molecule};
use mako_compiler::KernelCache;
use mako_eri::batch::EriClass;
use mako_precision::Precision;
use std::collections::HashMap;

/// Statistical workload: per ERI class, the number of surviving quartets.
#[derive(Debug, Clone)]
pub struct WorkloadModel {
    /// (class, surviving quartet count).
    pub classes: Vec<(EriClass, f64)>,
    /// Number of basis functions.
    pub nao: usize,
    /// Number of significant shell pairs.
    pub n_pairs: usize,
}

/// Build the workload model for a molecule/basis.
///
/// A shell pair survives when its Gaussian-product prefactor
/// `exp(−μ R²)` exceeds `1e-10`; quartet survival additionally requires the
/// product of two pair prefactor estimates to clear the same bar, which is
/// folded in as a per-class survival fraction.
pub fn build_workload(mol: &Molecule, basis: &BasisSet) -> WorkloadModel {
    let shells = basis.shells_for(mol);
    let nao = shells.iter().map(|s| s.nfunc()).sum();

    // Count significant pairs per (la, lb, kab) pair class, tracking the
    // prefactor distribution coarsely (strong vs weak pairs).
    let mut pair_classes: HashMap<(usize, usize, usize), (f64, f64)> = HashMap::new();
    let mut n_pairs = 0usize;
    for i in 0..shells.len() {
        for j in 0..=i {
            let r = dist(shells[i].center, shells[j].center);
            // Most-diffuse primitive pair dominates the survival estimate.
            let amin = shells[i].exps.iter().cloned().fold(f64::INFINITY, f64::min);
            let bmin = shells[j].exps.iter().cloned().fold(f64::INFINITY, f64::min);
            let mu = amin * bmin / (amin + bmin);
            let pref = (-mu * r * r).exp();
            if pref < 1e-10 {
                continue;
            }
            n_pairs += 1;
            let key = (
                shells[i].l.max(shells[j].l),
                shells[i].l.min(shells[j].l),
                shells[i].nprim() * shells[j].nprim(),
            );
            let e = pair_classes.entry(key).or_insert((0.0, 0.0));
            e.0 += 1.0;
            e.1 += pref;
        }
    }

    // Quartet counts per class: pair-class populations crossed, scaled by
    // the fraction whose bound product survives (estimated from the mean
    // prefactors — the classic N²→N²·f sparsity of screened Fock builds).
    let mut classes: Vec<(EriClass, f64)> = Vec::new();
    let keys: Vec<_> = pair_classes.keys().cloned().collect();
    for (ai, &ka) in keys.iter().enumerate() {
        for &kb in keys.iter().take(ai + 1) {
            let (na, sa) = pair_classes[&ka];
            let (nb, sb) = pair_classes[&kb];
            let mean_a = sa / na;
            let mean_b = sb / nb;
            // Fraction of quartets surviving the Schwarz product test.
            let survival = (mean_a * mean_b).powf(0.25).clamp(0.05, 1.0);
            let count = if ka == kb {
                na * (na + 1.0) / 2.0
            } else {
                na * nb
            } * survival;
            let class = EriClass {
                la: ka.0,
                lb: ka.1,
                lc: kb.0,
                ld: kb.1,
                kab: ka.2.min(36),
                kcd: kb.2.min(36),
            };
            classes.push((class, count));
        }
    }
    WorkloadModel {
        classes,
        nao,
        n_pairs,
    }
}

/// Per-batch simulated costs for one Fock-build iteration: each class is
/// split into batches of at most `batch_quartets` quartets, costed with the
/// tuned kernel for that class.
pub fn batch_costs(
    workload: &WorkloadModel,
    model: &CostModel,
    cache: &KernelCache,
    precision: Precision,
    batch_quartets: usize,
) -> Vec<f64> {
    // Target per-batch cost: batches are the unit of load balancing, so no
    // single batch may dominate a rank. Expensive classes (high l, high K)
    // get proportionally smaller batches — what a real dispatcher does when
    // it tiles a class across threadblock waves.
    let target_seconds = 2.0e-3;
    let mut costs = Vec::new();
    for &(class, count) in &workload.classes {
        let tuned = cache.get_or_tune(&class, precision, model);
        let probe = 4096usize;
        let per_quartet =
            mako_kernels::pipeline::simulate_batch_cost(&class, probe, &tuned.config, model)
                / probe as f64;
        let adaptive = ((target_seconds / per_quartet) as usize).clamp(64, batch_quartets);
        let mut remaining = count.round() as usize;
        while remaining > 0 {
            let n = remaining.min(adaptive);
            let c = mako_kernels::pipeline::simulate_batch_cost(&class, n, &tuned.config, model);
            costs.push(c);
            remaining -= n;
        }
    }
    costs
}

/// A genuinely multi-threaded distributed Fock build: quartet batches are
/// partitioned over `ranks` worker threads by LPT on their modeled device
/// cost (one thread standing in for one GPU's host rank), each worker runs
/// the **same parallel assembly engine as the single-device path**
/// ([`build_jk_with_configs`]) on its share, and the partial J/K matrices
/// are merged in rank order — the software analogue of the per-rank Fock
/// build + deterministic allreduce.
///
/// Returns the merged matrices, per-rank simulated device seconds, and the
/// summed scheduler statistics. For a fixed rank count the result is
/// bitwise reproducible: each rank's build is deterministic (engine
/// guarantee) and the merge order is the rank order.
#[allow(clippy::too_many_arguments)]
pub fn build_jk_distributed(
    density: &mako_linalg::Matrix,
    pairs: &[mako_eri::ScreenedPair],
    batches: &[mako_eri::QuartetBatch],
    layout: &mako_chem::AoLayout,
    schedule: &mako_quant::QuantSchedule,
    fp64_cfg: &mako_kernels::pipeline::PipelineConfig,
    quant_cfg: &mako_kernels::pipeline::PipelineConfig,
    model: &CostModel,
    ranks: usize,
) -> (JkMatrices, Vec<f64>, FockBuildStats) {
    build_jk_distributed_with_options(
        density,
        pairs,
        batches,
        layout,
        schedule,
        fp64_cfg,
        quant_cfg,
        model,
        ranks,
        FockEngineOptions::default(),
    )
}

/// [`build_jk_distributed`] with explicit engine options — the incremental
/// SCF driver passes its ΔD screen threshold through here so every rank
/// applies the same phase-0 screen to its share of the batches (the screen
/// is a pure per-quartet function of the density and the Schwarz bounds, so
/// partitioning does not change what is skipped).
#[allow(clippy::too_many_arguments)]
pub fn build_jk_distributed_with_options(
    density: &mako_linalg::Matrix,
    pairs: &[mako_eri::ScreenedPair],
    batches: &[mako_eri::QuartetBatch],
    layout: &mako_chem::AoLayout,
    schedule: &mako_quant::QuantSchedule,
    fp64_cfg: &mako_kernels::pipeline::PipelineConfig,
    quant_cfg: &mako_kernels::pipeline::PipelineConfig,
    model: &CostModel,
    ranks: usize,
    opts: FockEngineOptions,
) -> (JkMatrices, Vec<f64>, FockBuildStats) {
    assert!(ranks >= 1);
    // Weight every batch by its modeled FP64 cost for the LPT partition.
    let weights: Vec<f64> = batches
        .iter()
        .map(|b| {
            mako_kernels::pipeline::simulate_batch_cost(&b.class, b.len().max(1), fp64_cfg, model)
                .min(1e6)
        })
        .collect();
    let assignment = partition_lpt(&weights, ranks);

    let mut per_rank: Vec<Vec<mako_eri::QuartetBatch>> = vec![Vec::new(); ranks];
    for (bi, batch) in batches.iter().enumerate() {
        per_rank[assignment[bi]].push(batch.clone());
    }

    let results: Vec<(JkMatrices, FockBuildStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_rank
            .iter()
            .map(|mine| {
                scope.spawn(move || {
                    build_jk_with_configs(
                        density,
                        pairs,
                        mine,
                        layout,
                        schedule,
                        |_| (*fp64_cfg, *quant_cfg),
                        model,
                        opts,
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank thread")).collect()
    });

    let n = layout.nao;
    let mut j = mako_linalg::Matrix::zeros(n, n);
    let mut k = mako_linalg::Matrix::zeros(n, n);
    let mut seconds = Vec::with_capacity(ranks);
    let mut stats = FockBuildStats::default();
    for (jk, st) in results {
        j.axpy(1.0, &jk.j);
        k.axpy(1.0, &jk.k);
        seconds.push(st.device_seconds);
        stats.fp64_quartets += st.fp64_quartets;
        stats.quantized_quartets += st.quantized_quartets;
        stats.pruned_quartets += st.pruned_quartets;
        stats.skipped_quartets += st.skipped_quartets;
        stats.skipped_bound += st.skipped_bound;
        // Ranks run concurrently: the iteration costs what the slowest rank
        // costs, not the sum (unlike [`FockBuildStats::absorb`], which sums
        // sequential shares of one device's work).
        stats.device_seconds = stats.device_seconds.max(st.device_seconds);
    }
    (JkMatrices { j, k }, seconds, stats)
}

/// Replicated per-iteration work every rank repeats: the Fock
/// diagonalization (run as a blocked iterative eigensolver — LOBPCG-style,
/// which the paper cites as the MatMul-amenable choice for this stage),
/// plus DIIS/host bookkeeping.
pub fn replicated_serial_seconds(nao: usize, model: &CostModel) -> f64 {
    let n = nao as f64;
    // ~30 block iterations, block size 64: each is a couple of n² GEMMs.
    let flops = 30.0 * n * n * 64.0 * 4.0;
    let rate = 0.5 * model.device.tensor_peak(Precision::Fp64).max(1.0);
    flops / rate + 0.2
}

/// One scaling-curve row.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// GPU count.
    pub ranks: usize,
    /// Seconds per SCF iteration.
    pub iteration_seconds: f64,
    /// Parallel efficiency vs 1 GPU.
    pub efficiency: f64,
    /// Timing breakdown.
    pub timing: ParallelTiming,
}

/// Simulate the strong-scaling curve of one SCF iteration over the given
/// rank counts.
pub fn scaling_curve(
    batch_costs: &[f64],
    nao: usize,
    serial_seconds: f64,
    ranks_list: &[usize],
    cluster: &ClusterSpec,
) -> Vec<ScalingPoint> {
    // Fock + density allreduce volume: two n×n FP64 matrices.
    let allreduce_bytes = 2.0 * (nao * nao) as f64 * 8.0;
    let t1 = simulate_iteration(batch_costs, 1, 0.0, serial_seconds, cluster).total;
    ranks_list
        .iter()
        .map(|&ranks| {
            let timing = simulate_iteration(
                batch_costs,
                ranks,
                if ranks > 1 { allreduce_bytes } else { 0.0 },
                serial_seconds,
                cluster,
            );
            ScalingPoint {
                ranks,
                iteration_seconds: timing.total,
                efficiency: parallel_efficiency(t1, timing.total, ranks),
                timing,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mako_accel::DeviceSpec;
    use mako_chem::basis::BasisFamily;
    use mako_chem::builders;

    #[test]
    fn workload_counts_scale_with_system_size() {
        let basis10 = BasisFamily::Def2TzvpLike;
        let small = build_workload(&builders::water_cluster(3), &basis10.basis_for(&[
            mako_chem::Element::H,
            mako_chem::Element::O,
        ]));
        let large = build_workload(&builders::water_cluster(10), &basis10.basis_for(&[
            mako_chem::Element::H,
            mako_chem::Element::O,
        ]));
        assert!(large.nao > 3 * small.nao);
        assert!(large.n_pairs > small.n_pairs);
        let total = |w: &WorkloadModel| w.classes.iter().map(|&(_, c)| c).sum::<f64>();
        assert!(total(&large) > 5.0 * total(&small));
    }

    #[test]
    fn scaling_shape_matches_figure10() {
        // Ubiquitin-scale workload: > 90% efficiency within a node,
        // ≈ 60–85% at 64 GPUs.
        let mol = builders::ubiquitin_like();
        let basis = BasisFamily::Def2TzvpLike.basis_for(&mol.elements());
        let workload = build_workload(&mol, &basis);
        assert!(workload.nao > 10_000, "ubiquitin TZVP has >10k AOs: {}", workload.nao);

        let model = CostModel::new(DeviceSpec::a100());
        let cache = KernelCache::new();
        let costs = batch_costs(&workload, &model, &cache, Precision::Fp16, 200_000);
        assert!(costs.len() > 64, "need enough batches to balance");

        // Replicated serial stage: iterative diagonalization + host work.
        let serial = replicated_serial_seconds(workload.nao, &model);
        let curve = scaling_curve(
            &costs,
            workload.nao,
            serial,
            &[1, 2, 4, 8, 16, 32, 64],
            &ClusterSpec::azure_nd_a100_v4(),
        );
        let eff = |r: usize| curve.iter().find(|p| p.ranks == r).unwrap().efficiency;
        assert!(eff(8) > 0.90, "single-node efficiency {} (paper: >90%)", eff(8));
        assert!(eff(64) > 0.55 && eff(64) < 0.95, "64-GPU efficiency {}", eff(64));
        assert!(eff(8) > eff(64));
        // Wall time still shrinks monotonically.
        for w in curve.windows(2) {
            assert!(w[1].iteration_seconds < w[0].iteration_seconds);
        }
    }

    #[test]
    fn distributed_fock_matches_serial() {
        use mako_chem::basis::sto3g::sto3g;
        use mako_eri::batch::batch_quartets;
        use mako_eri::screening::build_screened_pairs;
        use mako_kernels::pipeline::PipelineConfig;
        use mako_quant::QuantSchedule;

        let mol = builders::water();
        let shells = sto3g().shells_for(&mol);
        let layout = mako_chem::AoLayout::new(&shells);
        let pairs = build_screened_pairs(&shells, 1e-12);
        let batches = batch_quartets(&pairs, 1e-14);
        let d = mako_linalg::Matrix::from_fn(layout.nao, layout.nao, |i, j| {
            0.4 / (1.0 + (i as f64 - j as f64).abs())
        });
        let model = CostModel::new(DeviceSpec::a100());
        let cfg = PipelineConfig::kernel_mako_fp64();
        let schedule = QuantSchedule::fp64_reference(0.0);

        let (serial, _) = crate::fock::build_jk(
            &d, &pairs, &batches, &layout, &schedule, &cfg, &cfg, &model,
        );
        for ranks in [1usize, 2, 4] {
            let (dist, seconds, stats) = build_jk_distributed(
                &d, &pairs, &batches, &layout, &schedule, &cfg, &cfg, &model, ranks,
            );
            assert_eq!(seconds.len(), ranks);
            assert!(stats.fp64_quartets > 0);
            assert!(
                dist.j.sub(&serial.j).max_abs() < 1e-11,
                "ranks={ranks} J mismatch"
            );
            assert!(
                dist.k.sub(&serial.k).max_abs() < 1e-11,
                "ranks={ranks} K mismatch"
            );
        }
    }

    #[test]
    fn distributed_fock_balances_load() {
        use mako_chem::basis::sto3g::sto3g;
        use mako_eri::batch::batch_quartets;
        use mako_eri::screening::build_screened_pairs;
        use mako_kernels::pipeline::PipelineConfig;
        use mako_quant::QuantSchedule;

        let mol = builders::water_cluster(2);
        let shells = sto3g().shells_for(&mol);
        let layout = mako_chem::AoLayout::new(&shells);
        let pairs = build_screened_pairs(&shells, 1e-12);
        let batches = batch_quartets(&pairs, 1e-14);
        let d = mako_linalg::Matrix::identity(layout.nao).scale(0.5);
        let model = CostModel::new(DeviceSpec::a100());
        let cfg = PipelineConfig::kernel_mako_fp64();
        let schedule = QuantSchedule::fp64_reference(0.0);
        let (_, seconds, _) = build_jk_distributed(
            &d, &pairs, &batches, &layout, &schedule, &cfg, &cfg, &model, 2,
        );
        let max = seconds.iter().cloned().fold(0.0f64, f64::max);
        let min = seconds.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > 0.0 && min > 0.0, "both ranks got work: {seconds:?}");
        assert!(min / max > 0.2, "load imbalance too large: {seconds:?}");
    }

    #[test]
    fn efficiency_is_one_for_single_rank() {
        let costs = vec![0.01; 128];
        let curve = scaling_curve(&costs, 1000, 0.05, &[1], &ClusterSpec::azure_nd_a100_v4());
        assert!((curve[0].efficiency - 1.0).abs() < 1e-12);
    }
}
