//! Multi-GPU scaling model for the Figure 10 experiment.
//!
//! The paper distributes the Fock build over MPI ranks (one per GPU),
//! allreduces the Fock matrix every iteration, and replicates the
//! diagonalization. At ubiquitin scale (1,231 atoms, def2-TZVP ≈ 25k basis
//! functions) the quartet batches cannot be enumerated explicitly on a CPU,
//! so this module builds a **statistical workload model**: shells are
//! instantiated for real, pair survival is estimated from the Gaussian
//! overlap decay (the same quantity Schwarz screening keys on), per-class
//! quartet counts follow from pair-class populations, and per-batch costs
//! come from the architecture-tuned kernel configurations.

use crate::error::FockBuildError;
use crate::fock::{build_jk_with_configs, FockBuildStats, FockEngineOptions, JkMatrices};
use mako_accel::cluster::{
    parallel_efficiency, partition_lpt, simulate_iteration, ClusterSpec, ParallelTiming,
    RingAllreduce,
};
use mako_accel::fault::{FaultPlan, RecoveryLedger};
use mako_accel::CostModel;
use mako_kernels::pipeline::PipelineConfig;
use mako_chem::molecule::dist;
use mako_chem::{BasisSet, Molecule};
use mako_compiler::KernelCache;
use mako_eri::batch::EriClass;
use mako_precision::Precision;
use std::collections::HashMap;

/// Statistical workload: per ERI class, the number of surviving quartets.
#[derive(Debug, Clone)]
pub struct WorkloadModel {
    /// (class, surviving quartet count).
    pub classes: Vec<(EriClass, f64)>,
    /// Number of basis functions.
    pub nao: usize,
    /// Number of significant shell pairs.
    pub n_pairs: usize,
}

/// Build the workload model for a molecule/basis.
///
/// A shell pair survives when its Gaussian-product prefactor
/// `exp(−μ R²)` exceeds `1e-10`; quartet survival additionally requires the
/// product of two pair prefactor estimates to clear the same bar, which is
/// folded in as a per-class survival fraction.
pub fn build_workload(mol: &Molecule, basis: &BasisSet) -> WorkloadModel {
    let shells = basis.shells_for(mol);
    let nao = shells.iter().map(|s| s.nfunc()).sum();

    // Count significant pairs per (la, lb, kab) pair class, tracking the
    // prefactor distribution coarsely (strong vs weak pairs).
    let mut pair_classes: HashMap<(usize, usize, usize), (f64, f64)> = HashMap::new();
    let mut n_pairs = 0usize;
    for i in 0..shells.len() {
        for j in 0..=i {
            let r = dist(shells[i].center, shells[j].center);
            // Most-diffuse primitive pair dominates the survival estimate.
            let amin = shells[i].exps.iter().cloned().fold(f64::INFINITY, f64::min);
            let bmin = shells[j].exps.iter().cloned().fold(f64::INFINITY, f64::min);
            let mu = amin * bmin / (amin + bmin);
            let pref = (-mu * r * r).exp();
            if pref < 1e-10 {
                continue;
            }
            n_pairs += 1;
            let key = (
                shells[i].l.max(shells[j].l),
                shells[i].l.min(shells[j].l),
                shells[i].nprim() * shells[j].nprim(),
            );
            let e = pair_classes.entry(key).or_insert((0.0, 0.0));
            e.0 += 1.0;
            e.1 += pref;
        }
    }

    // Quartet counts per class: pair-class populations crossed, scaled by
    // the fraction whose bound product survives (estimated from the mean
    // prefactors — the classic N²→N²·f sparsity of screened Fock builds).
    let mut classes: Vec<(EriClass, f64)> = Vec::new();
    let keys: Vec<_> = pair_classes.keys().cloned().collect();
    for (ai, &ka) in keys.iter().enumerate() {
        for &kb in keys.iter().take(ai + 1) {
            let (na, sa) = pair_classes[&ka];
            let (nb, sb) = pair_classes[&kb];
            let mean_a = sa / na;
            let mean_b = sb / nb;
            // Fraction of quartets surviving the Schwarz product test.
            let survival = (mean_a * mean_b).powf(0.25).clamp(0.05, 1.0);
            let count = if ka == kb {
                na * (na + 1.0) / 2.0
            } else {
                na * nb
            } * survival;
            let class = EriClass {
                la: ka.0,
                lb: ka.1,
                lc: kb.0,
                ld: kb.1,
                kab: ka.2.min(36),
                kcd: kb.2.min(36),
            };
            classes.push((class, count));
        }
    }
    WorkloadModel {
        classes,
        nao,
        n_pairs,
    }
}

/// Per-batch simulated costs for one Fock-build iteration: each class is
/// split into batches of at most `batch_quartets` quartets, costed with the
/// tuned kernel for that class.
pub fn batch_costs(
    workload: &WorkloadModel,
    model: &CostModel,
    cache: &KernelCache,
    precision: Precision,
    batch_quartets: usize,
) -> Vec<f64> {
    // Target per-batch cost: batches are the unit of load balancing, so no
    // single batch may dominate a rank. Expensive classes (high l, high K)
    // get proportionally smaller batches — what a real dispatcher does when
    // it tiles a class across threadblock waves.
    let target_seconds = 2.0e-3;
    let mut costs = Vec::new();
    for &(class, count) in &workload.classes {
        let tuned = cache.get_or_tune(&class, precision, model);
        let probe = 4096usize;
        let per_quartet =
            mako_kernels::pipeline::simulate_batch_cost(&class, probe, &tuned.config, model)
                / probe as f64;
        let adaptive = ((target_seconds / per_quartet) as usize).clamp(64, batch_quartets);
        let mut remaining = count.round() as usize;
        while remaining > 0 {
            let n = remaining.min(adaptive);
            let c = mako_kernels::pipeline::simulate_batch_cost(&class, n, &tuned.config, model);
            costs.push(c);
            remaining -= n;
        }
    }
    costs
}

/// A genuinely multi-threaded distributed Fock build: quartet batches are
/// partitioned over `ranks` worker threads by LPT on their modeled device
/// cost (one thread standing in for one GPU's host rank), each worker runs
/// the **same parallel assembly engine as the single-device path**
/// ([`build_jk_with_configs`]) on its share, and the partial J/K matrices
/// are merged in rank order — the software analogue of the per-rank Fock
/// build + deterministic allreduce.
///
/// Returns the merged matrices, per-rank simulated device seconds, and the
/// summed scheduler statistics. For a fixed rank count the result is
/// bitwise reproducible: each rank's build is deterministic (engine
/// guarantee) and the merge order is the rank order.
///
/// Errors with [`FockBuildError::NoRanks`] on an empty cluster and
/// [`FockBuildError::RankPanicked`] if a worker thread dies (a software
/// bug, as opposed to an *injected* fault, which
/// [`build_jk_distributed_ft`] recovers from).
#[allow(clippy::too_many_arguments)]
pub fn build_jk_distributed(
    density: &mako_linalg::Matrix,
    pairs: &[mako_eri::ScreenedPair],
    batches: &[mako_eri::QuartetBatch],
    layout: &mako_chem::AoLayout,
    schedule: &mako_quant::QuantSchedule,
    fp64_cfg: &PipelineConfig,
    quant_cfg: &PipelineConfig,
    model: &CostModel,
    ranks: usize,
) -> Result<(JkMatrices, Vec<f64>, FockBuildStats), FockBuildError> {
    build_jk_distributed_with_options(
        density,
        pairs,
        batches,
        layout,
        schedule,
        fp64_cfg,
        quant_cfg,
        model,
        ranks,
        FockEngineOptions::default(),
    )
}

/// Per-batch LPT weights: the modeled FP64 cost of every batch, the common
/// load model of the static partition, the straggler detector, and the
/// recovery ledger's two clocks.
fn batch_weights(
    batches: &[mako_eri::QuartetBatch],
    fp64_cfg_for: &(impl Fn(usize) -> PipelineConfig + Sync),
    model: &CostModel,
) -> Vec<f64> {
    batches
        .iter()
        .enumerate()
        .map(|(bi, b)| {
            mako_kernels::pipeline::simulate_batch_cost(
                &b.class,
                b.len().max(1),
                &fp64_cfg_for(bi),
                model,
            )
            .min(1e6)
        })
        .collect()
}

/// Partition batches over ranks by LPT on their weights; returns each
/// rank's share as **global batch indices in batch order** (the canonical
/// order every execution of a share must preserve).
fn lpt_shares(weights: &[f64], ranks: usize) -> Vec<Vec<usize>> {
    let assignment = partition_lpt(weights, ranks);
    let mut shares: Vec<Vec<usize>> = vec![Vec::new(); ranks];
    for (bi, &r) in assignment.iter().enumerate() {
        shares[r].push(bi);
    }
    shares
}

/// Evaluate one rank's share with the single-device engine — the **only**
/// way share numerics are ever produced. Recovery re-runs call this very
/// function on the same share, so the engine's determinism guarantee makes
/// re-executed results bitwise identical to the originals.
#[allow(clippy::too_many_arguments)]
fn run_rank_share(
    density: &mako_linalg::Matrix,
    pairs: &[mako_eri::ScreenedPair],
    batches: &[mako_eri::QuartetBatch],
    share: &[usize],
    layout: &mako_chem::AoLayout,
    schedule: &mako_quant::QuantSchedule,
    cfg_for: &(impl Fn(usize) -> (PipelineConfig, PipelineConfig) + Sync),
    model: &CostModel,
    opts: FockEngineOptions,
) -> (JkMatrices, FockBuildStats) {
    let mine: Vec<mako_eri::QuartetBatch> =
        share.iter().map(|&bi| batches[bi].clone()).collect();
    build_jk_with_configs(
        density,
        pairs,
        &mine,
        layout,
        schedule,
        |li| cfg_for(share[li]),
        model,
        opts,
    )
}

/// [`build_jk_distributed`] with explicit engine options — the incremental
/// SCF driver passes its ΔD screen threshold through here so every rank
/// applies the same phase-0 screen to its share of the batches (the screen
/// is a pure per-quartet function of the density and the Schwarz bounds, so
/// partitioning does not change what is skipped).
#[allow(clippy::too_many_arguments)]
pub fn build_jk_distributed_with_options(
    density: &mako_linalg::Matrix,
    pairs: &[mako_eri::ScreenedPair],
    batches: &[mako_eri::QuartetBatch],
    layout: &mako_chem::AoLayout,
    schedule: &mako_quant::QuantSchedule,
    fp64_cfg: &PipelineConfig,
    quant_cfg: &PipelineConfig,
    model: &CostModel,
    ranks: usize,
    opts: FockEngineOptions,
) -> Result<(JkMatrices, Vec<f64>, FockBuildStats), FockBuildError> {
    if ranks == 0 {
        return Err(FockBuildError::NoRanks);
    }
    let cfg_for = |_bi: usize| (*fp64_cfg, *quant_cfg);
    let weights = batch_weights(batches, &|_| *fp64_cfg, model);
    let shares = lpt_shares(&weights, ranks);

    let results: Vec<Result<(JkMatrices, FockBuildStats), FockBuildError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = shares
                .iter()
                .map(|share| {
                    scope.spawn(|| {
                        run_rank_share(
                            density, pairs, batches, share, layout, schedule, &cfg_for,
                            model, opts,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(rank, h)| h.join().map_err(|_| FockBuildError::RankPanicked { rank }))
                .collect()
        });

    let n = layout.nao;
    let mut j = mako_linalg::Matrix::zeros(n, n);
    let mut k = mako_linalg::Matrix::zeros(n, n);
    let mut seconds = Vec::with_capacity(ranks);
    let mut stats = FockBuildStats::default();
    for res in results {
        let (jk, st) = res?;
        j.axpy(1.0, &jk.j);
        k.axpy(1.0, &jk.k);
        seconds.push(st.device_seconds);
        stats.fp64_quartets += st.fp64_quartets;
        stats.quantized_quartets += st.quantized_quartets;
        stats.pruned_quartets += st.pruned_quartets;
        stats.skipped_quartets += st.skipped_quartets;
        stats.skipped_bound += st.skipped_bound;
        // Ranks run concurrently: the iteration costs what the slowest rank
        // costs, not the sum (unlike [`FockBuildStats::absorb`], which sums
        // sequential shares of one device's work).
        stats.device_seconds = stats.device_seconds.max(st.device_seconds);
    }
    Ok((JkMatrices { j, k }, seconds, stats))
}

/// Recovery policy of the fault-tolerant distributed build.
#[derive(Debug, Clone)]
pub struct FaultToleranceOptions {
    /// The (seeded, deterministic) fault schedule to execute under.
    pub plan: FaultPlan,
    /// Straggler detector bar: a rank that has burned its entire fault-free
    /// LPT share budget with batches still pending is flagged, and the
    /// pending suffix is re-partitioned onto faster ranks (work stealing).
    /// Effectively: ranks slower than this multiple of the plan lose their
    /// tail. Must be > 1.
    pub straggler_threshold: f64,
    /// Cluster geometry for the allreduce accounting; `None` skips the
    /// collective (single-node studies).
    pub cluster: Option<ClusterSpec>,
    /// Bytes moved by the per-build allreduce (only with `cluster`).
    pub allreduce_bytes: f64,
    /// Identifier of this build's collective in the fault plan's timeout
    /// stream (the SCF driver passes the iteration index so each
    /// iteration's allreduce draws independent timeouts).
    pub collective_call: u64,
}

impl FaultToleranceOptions {
    /// Recovery under `plan` with the default detector and no collective.
    pub fn new(plan: FaultPlan) -> FaultToleranceOptions {
        FaultToleranceOptions {
            plan,
            straggler_threshold: 1.5,
            cluster: None,
            allreduce_bytes: 0.0,
            collective_call: 0,
        }
    }
}

/// Outcome of a fault-tolerant distributed Fock build.
#[derive(Debug, Clone)]
pub struct FtFockOutcome {
    /// Merged J/K — bitwise identical to the fault-free build's.
    pub jk: JkMatrices,
    /// Per-logical-rank engine device seconds — identical to the fault-free
    /// build's (share numerics are always produced by the same engine call;
    /// faults change *who executes*, accounted in `recovery`).
    pub rank_seconds: Vec<f64>,
    /// Merged scheduler statistics — identical to the fault-free build's.
    pub stats: FockBuildStats,
    /// What recovery did and what the faults cost on the load-model clock.
    pub recovery: RecoveryLedger,
}

/// Fault-tolerant distributed Fock build: executes the same LPT-partitioned
/// build as [`build_jk_distributed_with_options`] while *simulating* the
/// fault schedule of `ft.plan` and recovering from every injected anomaly:
///
/// * **transient launch failures** — retried in place with capped
///   exponential backoff (wasted attempts and backoff delays are charged to
///   the degraded clock);
/// * **stragglers** — detected against the LPT load model (a rank that has
///   spent its whole fault-free share budget with work still pending); the
///   pending suffix is re-partitioned greedily onto the least-loaded live
///   ranks;
/// * **permanent rank loss** — a dead rank's partial results are lost, and
///   its **entire share** is re-run on the least-loaded survivor;
/// * **allreduce timeouts** — retried, each timeout charging its stall.
///
/// ## The determinism invariant
///
/// Recovered J/K, per-rank `device_seconds`, and scheduler statistics are
/// **bitwise identical** to the fault-free run, by construction: the
/// numerics of logical rank `r`'s share are only ever produced by
/// [`run_rank_share`] over the *original fault-free share* — re-runs
/// re-execute the identical engine call (deterministic by the engine
/// contract), thieves evaluate on behalf of the owner and ship tensors back
/// to the owner's ordered scatter, and the final merge stays in logical
/// rank order. No fault can regroup a floating-point sum. What faults *do*
/// change is the execution timeline, which is simulated on the LPT
/// load-model clock and reported in [`RecoveryLedger`]
/// (`fault_free_seconds` vs `degraded_seconds`).
#[allow(clippy::too_many_arguments)]
pub fn build_jk_distributed_ft(
    density: &mako_linalg::Matrix,
    pairs: &[mako_eri::ScreenedPair],
    batches: &[mako_eri::QuartetBatch],
    layout: &mako_chem::AoLayout,
    schedule: &mako_quant::QuantSchedule,
    cfg_for: &(impl Fn(usize) -> (PipelineConfig, PipelineConfig) + Sync),
    model: &CostModel,
    ranks: usize,
    opts: FockEngineOptions,
    ft: &FaultToleranceOptions,
) -> Result<FtFockOutcome, FockBuildError> {
    if ranks == 0 {
        return Err(FockBuildError::NoRanks);
    }
    let plan = &ft.plan;
    if plan.ranks() != ranks {
        return Err(FockBuildError::PlanMismatch {
            plan_ranks: plan.ranks(),
            ranks,
        });
    }

    let weights = batch_weights(batches, &|bi| cfg_for(bi).0, model);
    let shares = lpt_shares(&weights, ranks);
    let mut ledger = RecoveryLedger::default();
    let mut dist_span = mako_trace::span("dist", "build_jk_ft");
    if dist_span.is_recording() {
        dist_span.add_field("ranks", ranks);
        dist_span.add_field("batches", batches.len());
        for (rank, share) in shares.iter().enumerate() {
            let budget: f64 = share.iter().map(|&bi| weights[bi]).sum();
            mako_trace::instant(
                "dist",
                "share",
                vec![
                    mako_trace::field("rank", rank),
                    mako_trace::field("batches", share.len()),
                    mako_trace::field("budget_seconds", budget),
                ],
            );
        }
    }

    // ---- Phase 1: share numerics (the only place numbers are made). ----
    // Every logical rank's share is evaluated by one engine call whether or
    // not the rank survives; the fault walk below decides who *executed* it
    // and what that cost. A real stack would run the re-executions after
    // the failure; the numbers are identical either way (engine purity), so
    // the simulation orders them freely.
    let results: Vec<Result<(JkMatrices, FockBuildStats), FockBuildError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = shares
                .iter()
                .map(|share| {
                    scope.spawn(|| {
                        run_rank_share(
                            density, pairs, batches, share, layout, schedule, cfg_for,
                            model, opts,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(rank, h)| h.join().map_err(|_| FockBuildError::RankPanicked { rank }))
                .collect()
        });

    // ---- Phase 2: fault timeline on the load-model clock. ----
    // Each rank walks its share batch by batch; transient failures retry in
    // place, a doomed rank executes up to its death point, and a straggler
    // keeps only the prefix it can finish within its fault-free budget.
    let live: Vec<bool> = (0..ranks)
        .map(|r| plan.death_point(r, shares[r].len()).is_none())
        .collect();
    if live.iter().all(|&l| !l) {
        return Err(FockBuildError::AllRanksLost { ranks });
    }
    let share_budget: Vec<f64> = shares
        .iter()
        .map(|s| s.iter().map(|&bi| weights[bi]).sum())
        .collect();
    ledger.fault_free_seconds = share_budget.iter().fold(0.0f64, |a, &b| a.max(b));

    // Wasted attempts before one successful execution of `batch` by
    // `executor`, charging retries and backoff to the ledger. Capped as a
    // safety valve; rates are clamped < 1 so the cap is unreachable in
    // expectation.
    let charge_transients =
        |executor: usize, batch: usize, degraded: &mut f64, ledger: &mut RecoveryLedger| {
            let slowdown = plan.slowdown(executor);
            let mut attempt = 0u32;
            while attempt < 1000 && plan.transient_fails(executor, batch, attempt) {
                *degraded += weights[batch] * slowdown; // the failed launch
                let pause = plan.backoff_seconds(attempt);
                *degraded += pause;
                ledger.transient_retries += 1;
                ledger.backoff_seconds += pause;
                attempt += 1;
            }
            *degraded += weights[batch] * slowdown; // the successful launch
        };

    // Per-rank degraded clock and the batches displaced onto other ranks.
    let mut degraded: Vec<f64> = vec![0.0; ranks];
    let mut stolen: Vec<usize> = Vec::new(); // straggler tails (owner alive)
    let mut rerun: Vec<usize> = Vec::new(); // dead ranks' full shares
    for r in 0..ranks {
        let share = &shares[r];
        if let Some(die_at) = plan.death_point(r, share.len()) {
            // The rank executes (and pays for) its prefix, then vanishes;
            // everything it did is lost with its device memory, so the full
            // share is re-run on survivors.
            for &bi in &share[..die_at] {
                charge_transients(r, bi, &mut degraded[r], &mut ledger);
            }
            ledger.ranks_lost += 1;
            ledger.rerun_batches += share.len();
            rerun.extend(share.iter().copied());
            continue;
        }
        // Live rank: execute until done or until the detector fires. The
        // detector compares progress against the LPT plan — once the rank
        // has burned `threshold ×` its fault-free budget with batches still
        // pending, the pending tail is stolen.
        let budget = ft.straggler_threshold.max(1.0) * share_budget[r];
        for (i, &bi) in share.iter().enumerate() {
            if degraded[r] >= budget && i + 1 < share.len() {
                let tail = &share[i..];
                ledger.straggler_ranks += 1;
                ledger.stolen_batches += tail.len();
                stolen.extend(tail.iter().copied());
                break;
            }
            charge_transients(r, bi, &mut degraded[r], &mut ledger);
        }
    }

    // ---- Phase 3: re-place displaced batches on live ranks, greedily on
    // the least-loaded (deterministic: total_cmp, ties to the lowest
    // rank). Thieves *evaluate*; results remain attributed to the owner.
    for bi in stolen.into_iter().chain(rerun) {
        let (thief, _) = degraded
            .iter()
            .enumerate()
            .filter(|(r, _)| live[*r])
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("at least one live rank (checked above)");
        charge_transients(thief, bi, &mut degraded[thief], &mut ledger);
    }
    ledger.degraded_seconds = degraded
        .iter()
        .enumerate()
        .filter(|(r, _)| live[*r])
        .map(|(_, &t)| t)
        .fold(0.0f64, f64::max);

    // ---- Phase 4: the collective, with timeout retries. ----
    if let Some(cluster) = &ft.cluster {
        let comm = RingAllreduce::new(cluster.clone()).time(ft.allreduce_bytes, ranks);
        ledger.fault_free_seconds += comm;
        let mut attempt = 0u32;
        while attempt < 1000 && plan.allreduce_times_out(ft.collective_call, attempt) {
            ledger.degraded_seconds += plan.allreduce_timeout_seconds();
            ledger.allreduce_retries += 1;
            attempt += 1;
        }
        ledger.degraded_seconds += comm;
    }

    // ---- Phase 5: rank-ordered merge — identical to the fault-free path.
    let n = layout.nao;
    let mut j = mako_linalg::Matrix::zeros(n, n);
    let mut k = mako_linalg::Matrix::zeros(n, n);
    let mut rank_seconds = Vec::with_capacity(ranks);
    let mut stats = FockBuildStats::default();
    for res in results {
        let (jk, st) = res?;
        j.axpy(1.0, &jk.j);
        k.axpy(1.0, &jk.k);
        rank_seconds.push(st.device_seconds);
        stats.fp64_quartets += st.fp64_quartets;
        stats.quantized_quartets += st.quantized_quartets;
        stats.pruned_quartets += st.pruned_quartets;
        stats.skipped_quartets += st.skipped_quartets;
        stats.skipped_bound += st.skipped_bound;
        stats.device_seconds = stats.device_seconds.max(st.device_seconds);
    }
    if dist_span.is_recording() {
        dist_span.add_field("transient_retries", ledger.transient_retries);
        dist_span.add_field("straggler_ranks", ledger.straggler_ranks);
        dist_span.add_field("stolen_batches", ledger.stolen_batches);
        dist_span.add_field("rerun_batches", ledger.rerun_batches);
        dist_span.add_field("ranks_lost", ledger.ranks_lost);
        dist_span.add_field("allreduce_retries", ledger.allreduce_retries);
        dist_span.add_field("fault_free_seconds", ledger.fault_free_seconds);
        dist_span.add_field("degraded_seconds", ledger.degraded_seconds);
    }
    dist_span.end();
    Ok(FtFockOutcome {
        jk: JkMatrices { j, k },
        rank_seconds,
        stats,
        recovery: ledger,
    })
}

/// Replicated per-iteration work every rank repeats: the Fock
/// diagonalization (run as a blocked iterative eigensolver — LOBPCG-style,
/// which the paper cites as the MatMul-amenable choice for this stage),
/// plus DIIS/host bookkeeping.
pub fn replicated_serial_seconds(nao: usize, model: &CostModel) -> f64 {
    let n = nao as f64;
    // ~30 block iterations, block size 64: each is a couple of n² GEMMs.
    let flops = 30.0 * n * n * 64.0 * 4.0;
    let rate = 0.5 * model.device.tensor_peak(Precision::Fp64).max(1.0);
    flops / rate + 0.2
}

/// One scaling-curve row.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// GPU count.
    pub ranks: usize,
    /// Seconds per SCF iteration.
    pub iteration_seconds: f64,
    /// Parallel efficiency vs 1 GPU.
    pub efficiency: f64,
    /// Timing breakdown.
    pub timing: ParallelTiming,
}

/// Simulate the strong-scaling curve of one SCF iteration over the given
/// rank counts.
pub fn scaling_curve(
    batch_costs: &[f64],
    nao: usize,
    serial_seconds: f64,
    ranks_list: &[usize],
    cluster: &ClusterSpec,
) -> Vec<ScalingPoint> {
    // Fock + density allreduce volume: two n×n FP64 matrices.
    let allreduce_bytes = 2.0 * (nao * nao) as f64 * 8.0;
    let t1 = simulate_iteration(batch_costs, 1, 0.0, serial_seconds, cluster).total;
    ranks_list
        .iter()
        .map(|&ranks| {
            let timing = simulate_iteration(
                batch_costs,
                ranks,
                if ranks > 1 { allreduce_bytes } else { 0.0 },
                serial_seconds,
                cluster,
            );
            ScalingPoint {
                ranks,
                iteration_seconds: timing.total,
                efficiency: parallel_efficiency(t1, timing.total, ranks),
                timing,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mako_accel::DeviceSpec;
    use mako_chem::basis::BasisFamily;
    use mako_chem::builders;

    #[test]
    fn workload_counts_scale_with_system_size() {
        let basis10 = BasisFamily::Def2TzvpLike;
        let small = build_workload(&builders::water_cluster(3), &basis10.basis_for(&[
            mako_chem::Element::H,
            mako_chem::Element::O,
        ]));
        let large = build_workload(&builders::water_cluster(10), &basis10.basis_for(&[
            mako_chem::Element::H,
            mako_chem::Element::O,
        ]));
        assert!(large.nao > 3 * small.nao);
        assert!(large.n_pairs > small.n_pairs);
        let total = |w: &WorkloadModel| w.classes.iter().map(|&(_, c)| c).sum::<f64>();
        assert!(total(&large) > 5.0 * total(&small));
    }

    #[test]
    fn scaling_shape_matches_figure10() {
        // Ubiquitin-scale workload: > 90% efficiency within a node,
        // ≈ 60–85% at 64 GPUs.
        let mol = builders::ubiquitin_like();
        let basis = BasisFamily::Def2TzvpLike.basis_for(&mol.elements());
        let workload = build_workload(&mol, &basis);
        assert!(workload.nao > 10_000, "ubiquitin TZVP has >10k AOs: {}", workload.nao);

        let model = CostModel::new(DeviceSpec::a100());
        let cache = KernelCache::new();
        let costs = batch_costs(&workload, &model, &cache, Precision::Fp16, 200_000);
        assert!(costs.len() > 64, "need enough batches to balance");

        // Replicated serial stage: iterative diagonalization + host work.
        let serial = replicated_serial_seconds(workload.nao, &model);
        let curve = scaling_curve(
            &costs,
            workload.nao,
            serial,
            &[1, 2, 4, 8, 16, 32, 64],
            &ClusterSpec::azure_nd_a100_v4(),
        );
        let eff = |r: usize| curve.iter().find(|p| p.ranks == r).unwrap().efficiency;
        assert!(eff(8) > 0.90, "single-node efficiency {} (paper: >90%)", eff(8));
        assert!(eff(64) > 0.55 && eff(64) < 0.95, "64-GPU efficiency {}", eff(64));
        assert!(eff(8) > eff(64));
        // Wall time still shrinks monotonically.
        for w in curve.windows(2) {
            assert!(w[1].iteration_seconds < w[0].iteration_seconds);
        }
    }

    #[test]
    fn distributed_fock_matches_serial() {
        use mako_chem::basis::sto3g::sto3g;
        use mako_eri::batch::batch_quartets;
        use mako_eri::screening::build_screened_pairs;
        use mako_kernels::pipeline::PipelineConfig;
        use mako_quant::QuantSchedule;

        let mol = builders::water();
        let shells = sto3g().shells_for(&mol);
        let layout = mako_chem::AoLayout::new(&shells);
        let pairs = build_screened_pairs(&shells, 1e-12);
        let batches = batch_quartets(&pairs, 1e-14);
        let d = mako_linalg::Matrix::from_fn(layout.nao, layout.nao, |i, j| {
            0.4 / (1.0 + (i as f64 - j as f64).abs())
        });
        let model = CostModel::new(DeviceSpec::a100());
        let cfg = PipelineConfig::kernel_mako_fp64();
        let schedule = QuantSchedule::fp64_reference(0.0);

        let (serial, _) = crate::fock::build_jk(
            &d, &pairs, &batches, &layout, &schedule, &cfg, &cfg, &model,
        );
        for ranks in [1usize, 2, 4] {
            let (dist, seconds, stats) = build_jk_distributed(
                &d, &pairs, &batches, &layout, &schedule, &cfg, &cfg, &model, ranks,
            )
            .expect("distributed build");
            assert_eq!(seconds.len(), ranks);
            assert!(stats.fp64_quartets > 0);
            assert!(
                dist.j.sub(&serial.j).max_abs() < 1e-11,
                "ranks={ranks} J mismatch"
            );
            assert!(
                dist.k.sub(&serial.k).max_abs() < 1e-11,
                "ranks={ranks} K mismatch"
            );
        }
    }

    #[test]
    fn distributed_fock_balances_load() {
        use mako_chem::basis::sto3g::sto3g;
        use mako_eri::batch::batch_quartets;
        use mako_eri::screening::build_screened_pairs;
        use mako_kernels::pipeline::PipelineConfig;
        use mako_quant::QuantSchedule;

        let mol = builders::water_cluster(2);
        let shells = sto3g().shells_for(&mol);
        let layout = mako_chem::AoLayout::new(&shells);
        let pairs = build_screened_pairs(&shells, 1e-12);
        let batches = batch_quartets(&pairs, 1e-14);
        let d = mako_linalg::Matrix::identity(layout.nao).scale(0.5);
        let model = CostModel::new(DeviceSpec::a100());
        let cfg = PipelineConfig::kernel_mako_fp64();
        let schedule = QuantSchedule::fp64_reference(0.0);
        let (_, seconds, _) = build_jk_distributed(
            &d, &pairs, &batches, &layout, &schedule, &cfg, &cfg, &model, 2,
        )
        .expect("distributed build");
        let max = seconds.iter().cloned().fold(0.0f64, f64::max);
        let min = seconds.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > 0.0 && min > 0.0, "both ranks got work: {seconds:?}");
        assert!(min / max > 0.2, "load imbalance too large: {seconds:?}");
    }

    // Shared fixture for the fault-tolerance tests: a water-dimer Fock
    // build with a synthetic density.
    fn ft_fixture() -> (
        mako_linalg::Matrix,
        Vec<mako_eri::ScreenedPair>,
        Vec<mako_eri::QuartetBatch>,
        mako_chem::AoLayout,
        mako_quant::QuantSchedule,
        mako_kernels::pipeline::PipelineConfig,
        CostModel,
    ) {
        use mako_chem::basis::sto3g::sto3g;
        use mako_eri::batch::batch_quartets;
        use mako_eri::screening::build_screened_pairs;
        use mako_kernels::pipeline::PipelineConfig;
        use mako_quant::QuantSchedule;

        let mol = builders::water_cluster(2);
        let shells = sto3g().shells_for(&mol);
        let layout = mako_chem::AoLayout::new(&shells);
        let pairs = build_screened_pairs(&shells, 1e-12);
        let batches = batch_quartets(&pairs, 1e-14);
        let d = mako_linalg::Matrix::from_fn(layout.nao, layout.nao, |i, j| {
            0.4 / (1.0 + (i as f64 - j as f64).abs())
        });
        let model = CostModel::new(DeviceSpec::a100());
        let cfg = PipelineConfig::kernel_mako_fp64();
        let schedule = QuantSchedule::fp64_reference(0.0);
        (d, pairs, batches, layout, schedule, cfg, model)
    }

    fn assert_bitwise_jk(a: &JkMatrices, b: &JkMatrices, what: &str) {
        assert!(
            a.j.as_slice()
                .iter()
                .zip(b.j.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "{what}: J not bitwise identical"
        );
        assert!(
            a.k.as_slice()
                .iter()
                .zip(b.k.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "{what}: K not bitwise identical"
        );
    }

    #[test]
    fn ft_quiet_plan_matches_fault_free_exactly() {
        let (d, pairs, batches, layout, schedule, cfg, model) = ft_fixture();
        let ranks = 3;
        let (ff, ff_seconds, ff_stats) = build_jk_distributed(
            &d, &pairs, &batches, &layout, &schedule, &cfg, &cfg, &model, ranks,
        )
        .expect("fault-free build");
        let ft = build_jk_distributed_ft(
            &d,
            &pairs,
            &batches,
            &layout,
            &schedule,
            &|_| (cfg, cfg),
            &model,
            ranks,
            FockEngineOptions::default(),
            &FaultToleranceOptions::new(FaultPlan::quiet(ranks)),
        )
        .expect("ft build");
        assert_bitwise_jk(&ft.jk, &ff, "quiet plan");
        assert_eq!(ft.rank_seconds, ff_seconds);
        assert_eq!(ft.stats, ff_stats);
        assert!(ft.recovery.quiet(), "quiet plan fired recovery: {:?}", ft.recovery);
        // Quiet degraded timeline equals the fault-free plan exactly.
        assert_eq!(
            ft.recovery.degraded_seconds.to_bits(),
            ft.recovery.fault_free_seconds.to_bits()
        );
    }

    #[test]
    fn ft_rank_loss_recovers_bitwise() {
        let (d, pairs, batches, layout, schedule, cfg, model) = ft_fixture();
        let ranks = 4;
        let (ff, ff_seconds, ff_stats) = build_jk_distributed(
            &d, &pairs, &batches, &layout, &schedule, &cfg, &cfg, &model, ranks,
        )
        .expect("fault-free build");
        // Kill all but one rank — the strongest recovery case the issue
        // demands — plus a straggler and transients on the survivor.
        let plan = FaultPlan::quiet(ranks)
            .kill_rank(0, 0.3)
            .kill_rank(1, 0.0)
            .kill_rank(3, 0.9)
            .slow_rank(2, 4.0)
            .with_transients(0.2);
        let ft = build_jk_distributed_ft(
            &d,
            &pairs,
            &batches,
            &layout,
            &schedule,
            &|_| (cfg, cfg),
            &model,
            ranks,
            FockEngineOptions::default(),
            &FaultToleranceOptions::new(plan),
        )
        .expect("ft build");
        assert_bitwise_jk(&ft.jk, &ff, "3-of-4 rank loss");
        assert_eq!(ft.rank_seconds, ff_seconds);
        assert_eq!(ft.stats, ff_stats);
        assert_eq!(ft.recovery.ranks_lost, 3);
        assert!(ft.recovery.rerun_batches > 0, "dead shares must be re-run");
        assert!(ft.recovery.transient_retries > 0, "20% transients must fire");
        assert!(ft.recovery.backoff_seconds > 0.0);
        assert!(
            ft.recovery.degraded_seconds > ft.recovery.fault_free_seconds,
            "re-running 3 dead shares on one survivor must cost extra: {:?}",
            ft.recovery
        );
    }

    #[test]
    fn ft_straggler_tail_is_stolen() {
        let (d, pairs, batches, layout, schedule, cfg, model) = ft_fixture();
        let ranks = 4;
        let (ff, _, _) = build_jk_distributed(
            &d, &pairs, &batches, &layout, &schedule, &cfg, &cfg, &model, ranks,
        )
        .expect("fault-free build");
        let plan = FaultPlan::quiet(ranks).slow_rank(1, 8.0);
        let ft = build_jk_distributed_ft(
            &d,
            &pairs,
            &batches,
            &layout,
            &schedule,
            &|_| (cfg, cfg),
            &model,
            ranks,
            FockEngineOptions::default(),
            &FaultToleranceOptions::new(plan),
        )
        .expect("ft build");
        assert_bitwise_jk(&ft.jk, &ff, "straggler");
        assert_eq!(ft.recovery.straggler_ranks, 1);
        assert!(ft.recovery.stolen_batches > 0, "8× straggler must lose its tail");
        assert_eq!(ft.recovery.ranks_lost, 0);
        // Stealing bounds the damage: the degraded makespan stays below
        // what the untreated straggler would have cost (8× its budget).
        assert!(
            ft.recovery.degraded_seconds < 8.0 * ft.recovery.fault_free_seconds,
            "{:?}",
            ft.recovery
        );
    }

    #[test]
    fn ft_allreduce_timeouts_are_charged() {
        let (d, pairs, batches, layout, schedule, cfg, model) = ft_fixture();
        let ranks = 2;
        // Timeout stream with a high rate: some call index in 0..20 draws a
        // timeout deterministically.
        let plan = FaultPlan::seeded(
            11,
            ranks,
            &mako_accel::fault::FaultConfig {
                allreduce_timeout_rate: 0.5,
                ..mako_accel::fault::FaultConfig::default()
            },
        );
        let mut saw_retry = false;
        for call in 0..20 {
            let ft = build_jk_distributed_ft(
                &d,
                &pairs,
                &batches,
                &layout,
                &schedule,
                &|_| (cfg, cfg),
                &model,
                ranks,
                FockEngineOptions::default(),
                &FaultToleranceOptions {
                    cluster: Some(ClusterSpec::azure_nd_a100_v4()),
                    allreduce_bytes: 2.0 * (layout.nao * layout.nao) as f64 * 8.0,
                    collective_call: call,
                    ..FaultToleranceOptions::new(plan.clone())
                },
            )
            .expect("ft build");
            assert!(ft.recovery.fault_free_seconds > 0.0, "comm must be priced");
            if ft.recovery.allreduce_retries > 0 {
                saw_retry = true;
                assert!(
                    ft.recovery.degraded_seconds
                        > ft.recovery.fault_free_seconds + 0.9 * plan.allreduce_timeout_seconds(),
                    "timeout stall not charged: {:?}",
                    ft.recovery
                );
            }
        }
        assert!(saw_retry, "50% timeout rate never fired in 20 calls");
    }

    #[test]
    fn ft_rejects_bad_configurations() {
        let (d, pairs, batches, layout, schedule, cfg, model) = ft_fixture();
        let err = build_jk_distributed_ft(
            &d,
            &pairs,
            &batches,
            &layout,
            &schedule,
            &|_| (cfg, cfg),
            &model,
            3,
            FockEngineOptions::default(),
            &FaultToleranceOptions::new(FaultPlan::quiet(2)),
        )
        .expect_err("plan/ranks mismatch must be rejected");
        assert_eq!(
            err,
            crate::error::FockBuildError::PlanMismatch { plan_ranks: 2, ranks: 3 }
        );
        let err = build_jk_distributed(
            &d, &pairs, &batches, &layout, &schedule, &cfg, &cfg, &model, 0,
        )
        .expect_err("zero ranks must be rejected");
        assert_eq!(err, crate::error::FockBuildError::NoRanks);
    }

    #[test]
    fn efficiency_is_one_for_single_rank() {
        let costs = vec![0.01; 128];
        let curve = scaling_curve(&costs, 1000, 0.05, &[1], &ClusterSpec::azure_nd_a100_v4());
        assert!((curve[0].efficiency - 1.0).abs() < 1e-12);
    }
}
