//! Lockstep ensemble SCF: N independent molecules sharing one device.
//!
//! High-throughput workloads (conformer screens, perturbed-geometry sweeps,
//! training-data generation) run *fleets* of small SCF jobs, and one
//! molecule's sub-batches are too small to amortize kernel-launch latency —
//! exactly the overhead the paper's batched execution model exists to hide.
//! The [`EnsembleDriver`] runs its members in lockstep super-iterations and
//! fuses same-shape work across molecules into shared launches:
//!
//! * **Tuning is shared.** All members are built through one
//!   [`KernelCache`], so each `(EriClass, Precision)` pair is tuned once for
//!   the fleet instead of once per molecule. `tune_class` is deterministic,
//!   so a shared-cache driver is configured identically to a solo one — only
//!   the tuning wall time is amortized.
//! * **Launches are fused, pricing only.** Each super-iteration plans every
//!   live member's Fock build (phases 0–1 of the engine), then groups the
//!   resulting sub-batches across members by `(EriClass, PipelineConfig)` —
//!   the launch-identity key — and prices each group as ONE batched launch
//!   ([`fused_batch_device_seconds`]). The fused cost is apportioned back to
//!   member clocks pro-rata by quartet count. Nothing numeric crosses
//!   molecules: schedules, group quantization scales, densities, DIIS and
//!   rescue state are all per-member, so every member's trajectory is
//!   **bitwise identical** to its solo run — only its device clock (the
//!   thing the fusion improves) differs.
//! * **Members are isolated.** Each member steps its own
//!   [`ScfSession`](crate::scf): a diverging or non-finite member escalates
//!   through its own rescue ladder or drains out with its own error, without
//!   perturbing or stalling its neighbors. Finished molecules leave the
//!   lockstep; the fleet keeps going until every member is drained.
//! * **Faults hit the fleet, not the members.** An optional seeded
//!   [`FaultPlan`] injects transient launch failures and rank loss into the
//!   fused-launch dispatch (round-robin over simulated ranks). Recovery
//!   (retry with backoff, re-running a dead rank's launches on survivors) is
//!   priced on the ensemble's [`EnsembleLedger`]; member results stay
//!   fault-silent and bitwise identical to a fault-free batched run.
//!
//! Trace spans: `ensemble.run` (fleet), `ensemble.iteration` (per
//! super-iteration), `ensemble.launch` (per fused launch, with its
//! cross-molecule composition), `ensemble.member` (per member per
//! super-iteration).

use crate::error::ScfError;
use crate::fock::{plan_jk, FockPlan};
use crate::scf::{PreparedIteration, ScfConfig, ScfDriver, ScfResult, ScfRunOptions, ScfSession};
use mako_accel::fault::{FaultPlan, RecoveryLedger};
use mako_accel::EnsembleLedger;
use mako_chem::{BasisSet, Molecule};
use mako_compiler::KernelCache;
use mako_eri::batch::EriClass;
use mako_kernels::pipeline::{fused_batch_device_seconds, PipelineConfig};

/// One fused cross-molecule launch: the launch-identity key plus the
/// `(staged index, sub-unit index)` coordinates of every member sub-batch
/// it covers.
type LaunchGroup = ((EriClass, PipelineConfig), Vec<(usize, usize)>);

/// Fleet-level knobs of an ensemble run.
#[derive(Debug, Clone)]
pub struct EnsembleConfig {
    /// Simulated ranks the fused launches are dispatched over (round-robin).
    /// With one rank the dispatch is trivially serial.
    pub ranks: usize,
    /// Optional seeded fault plan for chaos runs. Faults are injected into
    /// the fused-launch dispatch and accounted on the ensemble ledger;
    /// member numerics never see them.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for EnsembleConfig {
    fn default() -> EnsembleConfig {
        EnsembleConfig {
            ranks: 1,
            fault_plan: None,
        }
    }
}

/// The outcome of an ensemble run: one result per member, in input order,
/// plus the fleet ledger.
#[derive(Debug)]
pub struct EnsembleResult {
    /// Per-member outcomes, index-aligned with the input molecules. A
    /// member that failed (non-finite without rescue, diagonalization
    /// breakdown) carries its own error; its neighbors are unaffected.
    pub members: Vec<Result<ScfResult, ScfError>>,
    /// Fleet accounting: fused-vs-solo launch pricing and the recovery
    /// machinery's work.
    pub ledger: EnsembleLedger,
}

impl EnsembleResult {
    /// True when every member converged.
    pub fn all_converged(&self) -> bool {
        self.members
            .iter()
            .all(|m| m.as_ref().is_ok_and(|r| r.converged))
    }

    /// Total ERI device seconds actually charged across member clocks
    /// (the fused pricing, apportioned).
    pub fn total_member_device_seconds(&self) -> f64 {
        self.members
            .iter()
            .filter_map(|m| m.as_ref().ok())
            .map(|r| r.total_seconds)
            .sum()
    }
}

/// Runs N independent molecules in lockstep with cross-molecule launch
/// fusion. See the module docs for the execution and isolation model.
pub struct EnsembleDriver {
    drivers: Vec<ScfDriver>,
    config: EnsembleConfig,
    cache_tunes: usize,
    cache_hits: usize,
    cache_duplicates_avoided: usize,
}

impl EnsembleDriver {
    /// Build drivers for every molecule through one shared [`KernelCache`].
    ///
    /// All members share `basis` and `config`. Per-member distributed
    /// execution is disabled (`config.distributed` is stripped): the
    /// ensemble owns the rank model — fused launches are dispatched over
    /// [`EnsembleConfig::ranks`] — and the two layers must not double-price
    /// the same work.
    pub fn try_new(
        mols: &[Molecule],
        basis: &BasisSet,
        config: ScfConfig,
        ensemble: EnsembleConfig,
    ) -> Result<EnsembleDriver, ScfError> {
        assert!(ensemble.ranks >= 1, "an ensemble needs at least one rank");
        let mut config = config;
        config.distributed = None;
        let cache = KernelCache::new();
        let drivers = mols
            .iter()
            .map(|mol| ScfDriver::try_new_with_cache(mol, basis, config.clone(), &cache))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(EnsembleDriver {
            drivers,
            config: ensemble,
            cache_tunes: cache.tunes_performed(),
            cache_hits: cache.hits(),
            cache_duplicates_avoided: cache.duplicates_avoided(),
        })
    }

    /// Number of member molecules.
    pub fn len(&self) -> usize {
        self.drivers.len()
    }

    /// True when the ensemble has no members.
    pub fn is_empty(&self) -> bool {
        self.drivers.is_empty()
    }

    /// Tuner sweeps the shared cache actually performed (fleet-wide, not
    /// per molecule).
    pub fn cache_tunes(&self) -> usize {
        self.cache_tunes
    }

    /// Tuner sweeps avoided because a member requested an already-cached
    /// kernel — the amortization the shared cache exists for. Every hit is
    /// a sweep a solo run would have paid.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// Redundant sweeps additionally avoided by the cache's write-lock
    /// double-check when members are built concurrently.
    pub fn cache_duplicates_avoided(&self) -> usize {
        self.cache_duplicates_avoided
    }

    /// Run every member to completion in lockstep. Never fails as a whole:
    /// per-member failures drain into [`EnsembleResult::members`].
    pub fn run(&self) -> EnsembleResult {
        let n = self.drivers.len();
        let mut run_span = mako_trace::span("ensemble", "run");
        if run_span.is_recording() {
            run_span.add_field("members", n);
            run_span.add_field("ranks", self.config.ranks);
        }

        let mut outcomes: Vec<Option<Result<ScfResult, ScfError>>> =
            (0..n).map(|_| None).collect();
        let mut sessions: Vec<Option<ScfSession<'_>>> = Vec::with_capacity(n);
        for (m, drv) in self.drivers.iter().enumerate() {
            match ScfSession::new(drv, ScfRunOptions::default()) {
                Ok(s) => sessions.push(Some(s)),
                Err(e) => {
                    outcomes[m] = Some(Err(e));
                    sessions.push(None);
                }
            }
        }

        let fault_plan = self
            .config
            .fault_plan
            .clone()
            .unwrap_or_else(|| FaultPlan::quiet(self.config.ranks));
        let ranks = fault_plan.ranks();
        // Rank loss is persistent: a rank that dies stays dead for the rest
        // of the run (unlike the per-call model of `build_jk_distributed_ft`,
        // the ensemble run IS the lifetime of the simulated job).
        let mut dead = vec![false; ranks];
        // Global fused-launch counter: the coordinate of the fault plan's
        // per-(rank, launch, attempt) transient stream, so a plan replays
        // bit-for-bit regardless of how launches group into super-iterations.
        let mut launch_counter = 0usize;

        let mut ledger = EnsembleLedger::default();

        loop {
            // Drain members whose trajectory is over (converged or hit the
            // iteration cap) out of the lockstep.
            for m in 0..n {
                if sessions[m].as_ref().is_some_and(|s| !s.active()) {
                    let s = sessions[m].take().expect("checked is_some");
                    outcomes[m] = Some(Ok(s.finish()));
                }
            }
            if sessions.iter().all(Option::is_none) {
                break;
            }

            let mut iter_span = mako_trace::span("ensemble", "iteration");

            // ---- Stage: per-member trajectory decisions + build plans. ----
            // `prepare` commits every schedule/rebuild decision per member;
            // `plan_jk` runs phases 0–1 (screen + split); `freeze_scales`
            // locks the per-molecule group quantization scales. After this
            // point execution can only change pricing, never numerics.
            let mut staged: Vec<(usize, PreparedIteration, FockPlan)> = Vec::new();
            for (m, slot) in sessions.iter_mut().enumerate() {
                let Some(sess) = slot.as_mut() else { continue };
                let prep = sess.prepare();
                let drv = &self.drivers[m];
                let mut plan = plan_jk(
                    &prep.build_density,
                    &drv.pairs,
                    &drv.batches,
                    &prep.schedule,
                    |bi| (drv.fp64_cfgs[bi], drv.quant_cfgs[bi]),
                    &drv.layout,
                    prep.opts,
                );
                plan.freeze_scales(&drv.pairs);
                staged.push((m, prep, plan));
            }
            if iter_span.is_recording() {
                iter_span.add_field("super_iter", ledger.super_iterations);
                iter_span.add_field("live_members", staged.len());
            }

            // ---- Stage: cross-molecule launch fusion (pricing only). ----
            // Group sub-batches by their launch identity in first-occurrence
            // order (deterministic; the population of keys is tiny — classes
            // × precisions — so a linear scan beats hashing).
            let mut groups: Vec<LaunchGroup> = Vec::new();
            for (si, (_, _, plan)) in staged.iter().enumerate() {
                for (ui, u) in plan.units.iter().enumerate() {
                    let key = (u.class, u.cfg);
                    match groups.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, members)) => members.push((si, ui)),
                        None => groups.push((key, vec![(si, ui)])),
                    }
                }
            }

            let model = &self.drivers[staged[0].0].model;
            let mut member_share = vec![0.0f64; staged.len()];
            let mut launch_costs: Vec<f64> = Vec::with_capacity(groups.len());
            for ((class, cfg), members) in &groups {
                let counts: Vec<usize> = members
                    .iter()
                    .map(|&(si, ui)| staged[si].2.units[ui].quartets.len())
                    .collect();
                let (fused, solo) = fused_batch_device_seconds(class, &counts, cfg, model);
                let total: usize = counts.iter().sum();
                for (&(si, _), &c) in members.iter().zip(&counts) {
                    member_share[si] += fused * (c as f64 / total as f64);
                }
                ledger.fused_launches += 1;
                ledger.solo_launches += counts.len();
                ledger.fused_device_seconds += fused;
                ledger.solo_device_seconds += solo;
                launch_costs.push(fused);
                if mako_trace::enabled() {
                    mako_trace::instant(
                        "ensemble",
                        "launch",
                        vec![
                            mako_trace::field("class", class.label()),
                            mako_trace::field("precision", format!("{:?}", cfg.precision)),
                            mako_trace::field("members", counts.len()),
                            mako_trace::field("quartets", total),
                            mako_trace::field("device_seconds", fused),
                            mako_trace::field("solo_seconds", solo),
                        ],
                    );
                }
            }

            // ---- Stage: fault timeline of the fused dispatch. ----
            self.chaos_pass(
                &fault_plan,
                &mut dead,
                &mut launch_counter,
                &launch_costs,
                &mut ledger.recovery,
            );

            // ---- Stage: per-member assembly + trajectory advance. ----
            // Strict member order; each session's advance is exactly the
            // solo loop body, so the member trajectory is bitwise identical
            // to its one-at-a-time run.
            for ((m, prep, mut plan), share) in staged.into_iter().zip(member_share) {
                plan.set_device_seconds(share);
                let drv = &self.drivers[m];
                let jk = plan.assemble(&prep.build_density, &drv.pairs, &drv.layout);
                let sess = sessions[m].as_mut().expect("staged implies live");
                match sess.advance(prep, jk, plan.stats, RecoveryLedger::default()) {
                    Ok(()) => {
                        if mako_trace::enabled() {
                            mako_trace::instant(
                                "ensemble",
                                "member",
                                vec![
                                    mako_trace::field("member", m),
                                    mako_trace::field("iter", sess.iteration()),
                                    mako_trace::field("energy", sess.energy()),
                                    mako_trace::field("residual", sess.residual()),
                                    mako_trace::field("active", sess.active()),
                                ],
                            );
                        }
                    }
                    Err(e) => {
                        // Failure containment: the member drains with its
                        // own error; the lockstep carries on.
                        if mako_trace::enabled() {
                            mako_trace::instant(
                                "ensemble",
                                "member",
                                vec![
                                    mako_trace::field("member", m),
                                    mako_trace::field("error", e.to_string()),
                                    mako_trace::field("active", false),
                                ],
                            );
                        }
                        outcomes[m] = Some(Err(e));
                        sessions[m] = None;
                    }
                }
            }

            iter_span.end();
            ledger.super_iterations += 1;
        }

        if run_span.is_recording() {
            run_span.add_field("super_iterations", ledger.super_iterations);
            run_span.add_field("fused_launches", ledger.fused_launches);
            run_span.add_field("solo_launches", ledger.solo_launches);
            run_span.add_field("fused_device_seconds", ledger.fused_device_seconds);
            run_span.add_field("solo_device_seconds", ledger.solo_device_seconds);
            run_span.add_field("ranks_lost", ledger.recovery.ranks_lost);
        }
        run_span.end();

        EnsembleResult {
            members: outcomes
                .into_iter()
                .map(|o| o.expect("every member drained"))
                .collect(),
            ledger,
        }
    }

    /// Walk one super-iteration's fused launches through the fault plan:
    /// round-robin dispatch over surviving ranks, in-place transient
    /// retries with capped exponential backoff, and persistent rank loss
    /// with the dead rank's launches re-run on the least-loaded survivor.
    /// Accounting only — the launches' numerical results are computed by
    /// the (deterministic) assembly stage regardless of the timeline.
    fn chaos_pass(
        &self,
        plan: &FaultPlan,
        dead: &mut [bool],
        launch_counter: &mut usize,
        launch_costs: &[f64],
        recovery: &mut RecoveryLedger,
    ) {
        let ranks = dead.len();
        let survivors: Vec<usize> = (0..ranks).filter(|&r| !dead[r]).collect();
        // The plan guarantees at least one survivor.
        let mut shares: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ranks];
        for (i, &cost) in launch_costs.iter().enumerate() {
            let r = survivors[i % survivors.len()];
            shares[r].push((*launch_counter + i, cost));
        }
        *launch_counter += launch_costs.len();

        // Fault-free makespan of this super-iteration: the heaviest rank.
        let budget = shares
            .iter()
            .map(|s| s.iter().map(|&(_, c)| c).sum::<f64>())
            .fold(0.0f64, f64::max);
        recovery.fault_free_seconds += budget;

        // Wasted attempts before one successful execution, charged to the
        // executor's degraded clock. Capped as a safety valve; rates are
        // clamped < 1 so the cap is unreachable in expectation.
        let charge = |executor: usize,
                      launch: usize,
                      cost: f64,
                      degraded: &mut f64,
                      recovery: &mut RecoveryLedger| {
            let slowdown = plan.slowdown(executor);
            let mut attempt = 0u32;
            while attempt < 1000 && plan.transient_fails(executor, launch, attempt) {
                *degraded += cost * slowdown; // the failed launch
                let pause = plan.backoff_seconds(attempt);
                *degraded += pause;
                recovery.transient_retries += 1;
                recovery.backoff_seconds += pause;
                attempt += 1;
            }
            *degraded += cost * slowdown; // the successful launch
        };

        let mut degraded = vec![0.0f64; ranks];
        let mut rerun: Vec<(usize, f64)> = Vec::new();
        for &r in &survivors {
            let share = std::mem::take(&mut shares[r]);
            if let Some(die_at) = plan.death_point(r, share.len()) {
                // The rank executes (and pays for) its prefix, then
                // vanishes; its device memory goes with it, so the full
                // share re-runs on survivors.
                for &(li, cost) in &share[..die_at] {
                    charge(r, li, cost, &mut degraded[r], recovery);
                }
                dead[r] = true;
                recovery.ranks_lost += 1;
                recovery.rerun_batches += share.len();
                rerun.extend_from_slice(&share);
                continue;
            }
            for &(li, cost) in &share {
                charge(r, li, cost, &mut degraded[r], recovery);
            }
        }
        for (li, cost) in rerun {
            let (thief, _) = degraded
                .iter()
                .enumerate()
                .filter(|&(r, _)| !dead[r])
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("the plan leaves at least one survivor");
            charge(thief, li, cost, &mut degraded[thief], recovery);
        }
        recovery.degraded_seconds += degraded
            .iter()
            .enumerate()
            .filter(|&(r, _)| !dead[r])
            .map(|(_, &t)| t)
            .fold(0.0f64, f64::max);
    }
}
