//! Pulay DIIS (direct inversion in the iterative subspace) convergence
//! acceleration.
//!
//! The error vector is the orthonormal-basis commutator `Xᵀ(FDS − SDF)X`;
//! the extrapolated Fock matrix minimizes the norm of the linear combination
//! of stored error vectors subject to Σc = 1, solved via the augmented
//! B-matrix system.

use mako_linalg::{gemm, Matrix, Transpose};

/// DIIS accelerator state.
pub struct Diis {
    max_vectors: usize,
    focks: Vec<Matrix>,
    errors: Vec<Matrix>,
    stats: DiisStats,
}

/// Conditioning-guard counters of a [`Diis`] accelerator: how often the
/// augmented B system went singular or ill-conditioned and what it cost.
/// Observability only — not part of [`DiisSnapshot`], so checkpoints are
/// unaffected and restored accelerators start from zeroed counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiisStats {
    /// Extrapolations that hit a singular or ill-conditioned B system at
    /// least once.
    pub conditioning_events: usize,
    /// (Fock, error) pairs dropped (oldest first) to recondition B.
    pub dropped_pairs: usize,
    /// Extrapolations that exhausted the history and fell back to the raw
    /// Fock (distinct from the normal warm-up pass-through).
    pub raw_fallbacks: usize,
}

/// DIIS coefficients beyond this magnitude mean the solve amplified noise
/// by ~1e8 — numerically a singular system even when elimination survived.
const COEFF_CAP: f64 = 1e8;

impl Diis {
    /// New accelerator keeping up to `max_vectors` history entries.
    pub fn new(max_vectors: usize) -> Diis {
        Diis {
            max_vectors: max_vectors.max(2),
            focks: Vec::new(),
            errors: Vec::new(),
            stats: DiisStats::default(),
        }
    }

    /// The DIIS error `Xᵀ (F D S − S D F) X`.
    pub fn error_vector(f: &Matrix, d: &Matrix, s: &Matrix, x: &Matrix) -> Matrix {
        let fds = gemm(&gemm(f, Transpose::No, d, Transpose::No), Transpose::No, s, Transpose::No);
        let sdf = gemm(&gemm(s, Transpose::No, d, Transpose::No), Transpose::No, f, Transpose::No);
        let comm = fds.sub(&sdf);
        let half = gemm(x, Transpose::Yes, &comm, Transpose::No);
        gemm(&half, Transpose::No, x, Transpose::No)
    }

    /// Push a (Fock, error) pair and return the extrapolated Fock matrix.
    /// Falls back to the raw Fock while the history is too short.
    ///
    /// When the augmented B system is singular or ill-conditioned (solve
    /// fails, or the coefficients are non-finite / absurdly large), the
    /// guard drops the *oldest* pairs one at a time and re-solves — old
    /// near-duplicate error vectors are what makes B rank-deficient — and
    /// only returns the raw Fock once the history is exhausted. Every
    /// degradation is counted in [`DiisStats`].
    pub fn extrapolate(&mut self, f: Matrix, error: Matrix) -> Matrix {
        let latest = f.clone();
        self.focks.push(f);
        self.errors.push(error);
        if self.focks.len() > self.max_vectors {
            self.focks.remove(0);
            self.errors.remove(0);
        }
        if self.focks.len() < 2 {
            return latest;
        }

        let mut degraded = false;
        while self.focks.len() >= 2 {
            let m = self.focks.len();
            // Augmented B system: [B 1; 1 0][c; λ] = [0; 1].
            let dim = m + 1;
            let mut b = Matrix::zeros(dim, dim);
            for i in 0..m {
                for j in 0..m {
                    b[(i, j)] = self.errors[i].dot(&self.errors[j]);
                }
                b[(i, m)] = 1.0;
                b[(m, i)] = 1.0;
            }
            let mut rhs = vec![0.0; dim];
            rhs[m] = 1.0;

            let solution = solve_dense(&b, &rhs).filter(|c| {
                c.iter().take(m).all(|v| v.is_finite() && v.abs() < COEFF_CAP)
            });
            match solution {
                Some(c) => {
                    if degraded {
                        self.stats.conditioning_events += 1;
                    }
                    let shape = &self.focks[0];
                    let mut out = Matrix::zeros(shape.rows(), shape.cols());
                    for (ci, fi) in c.iter().take(m).zip(&self.focks) {
                        out.axpy(*ci, fi);
                    }
                    return out;
                }
                None => {
                    degraded = true;
                    self.stats.dropped_pairs += 1;
                    self.focks.remove(0);
                    self.errors.remove(0);
                }
            }
        }
        // Even the two newest pairs formed a singular system: raw Fock.
        self.stats.conditioning_events += 1;
        self.stats.raw_fallbacks += 1;
        latest
    }

    /// Conditioning-guard counters accumulated so far.
    pub fn stats(&self) -> DiisStats {
        self.stats
    }

    /// Capture the full history for checkpointing. The snapshot is
    /// bit-exact: restoring it and continuing reproduces the uninterrupted
    /// trajectory (extrapolation is a pure function of the stored pairs).
    pub fn snapshot(&self) -> DiisSnapshot {
        DiisSnapshot {
            max_vectors: self.max_vectors,
            focks: self.focks.clone(),
            errors: self.errors.clone(),
        }
    }

    /// Rebuild an accelerator from a checkpoint snapshot. The conditioning
    /// counters restart from zero — they are run-local observability, not
    /// trajectory state (extrapolation is a pure function of the pairs).
    pub fn restore(snapshot: DiisSnapshot) -> Diis {
        Diis {
            max_vectors: snapshot.max_vectors.max(2),
            focks: snapshot.focks,
            errors: snapshot.errors,
            stats: DiisStats::default(),
        }
    }

    /// The stored (Fock, error) history, oldest first — serialized by the
    /// checkpoint writer.
    pub fn history(&self) -> (&[Matrix], &[Matrix]) {
        (&self.focks, &self.errors)
    }

    /// Drop the stored history — the DIIS *restart* the incremental SCF
    /// driver issues when the iteration diverges (residual growth): stale
    /// Fock/error pairs from before the divergence would otherwise keep
    /// steering the extrapolation, and the incremental accumulators are
    /// rebuilt at the same time so drift cannot survive the restart.
    pub fn reset(&mut self) {
        self.focks.clear();
        self.errors.clear();
    }

    /// Number of stored (Fock, error) pairs.
    pub fn len(&self) -> usize {
        self.focks.len()
    }

    /// Whether the history is empty (fresh or just restarted).
    pub fn is_empty(&self) -> bool {
        self.focks.is_empty()
    }

    /// RMS of the latest error vector (convergence measure).
    pub fn last_error_norm(&self) -> f64 {
        self.errors
            .last()
            .map(|e| e.norm_fro() / (e.rows() as f64))
            .unwrap_or(f64::INFINITY)
    }
}

/// The serializable state of a [`Diis`] accelerator: everything needed to
/// resume extrapolation mid-trajectory with bit-identical results.
#[derive(Debug, Clone, PartialEq)]
pub struct DiisSnapshot {
    /// History capacity.
    pub max_vectors: usize,
    /// Stored Fock matrices, oldest first.
    pub focks: Vec<Matrix>,
    /// Stored error vectors, oldest first (paired with `focks`).
    pub errors: Vec<Matrix>,
}

/// Dense Gaussian elimination with partial pivoting (the DIIS B system is
/// tiny and possibly indefinite, so Cholesky doesn't apply).
fn solve_dense(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    let mut m = a.clone();
    let mut x: Vec<f64> = b.to_vec();
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for r in (col + 1)..n {
            if m[(r, col)].abs() > m[(piv, col)].abs() {
                piv = r;
            }
        }
        if m[(piv, col)].abs() < 1e-14 {
            return None;
        }
        if piv != col {
            for c in 0..n {
                let t = m[(col, c)];
                m[(col, c)] = m[(piv, c)];
                m[(piv, c)] = t;
            }
            x.swap(col, piv);
        }
        let inv = 1.0 / m[(col, col)];
        for r in (col + 1)..n {
            let f = m[(r, col)] * inv;
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                m[(r, c)] -= f * m[(col, c)];
            }
            x[r] -= f * x[col];
        }
    }
    for col in (0..n).rev() {
        let mut s = x[col];
        for c in (col + 1)..n {
            s -= m[(col, c)] * x[c];
        }
        x[col] = s / m[(col, col)];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_dense_recovers_solution() {
        let a = Matrix::from_vec(3, 3, vec![2.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 4.0]);
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = solve_dense(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_dense_rejects_singular() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(solve_dense(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn first_fock_passes_through() {
        let mut diis = Diis::new(6);
        let f = Matrix::identity(3);
        let e = Matrix::zeros(3, 3);
        let out = diis.extrapolate(f.clone(), e);
        assert_eq!(out, f);
    }

    #[test]
    fn extrapolation_weights_sum_to_one() {
        // Two Focks F1 and F2 with opposite errors: DIIS should return
        // close to the mean (the combination canceling the errors).
        let mut diis = Diis::new(6);
        let f1 = Matrix::identity(2);
        let f2 = Matrix::identity(2).scale(3.0);
        let mut e1 = Matrix::zeros(2, 2);
        e1[(0, 0)] = 1.0;
        let e2 = e1.scale(-1.0);
        let _ = diis.extrapolate(f1, e1);
        let out = diis.extrapolate(f2, e2);
        // c = (0.5, 0.5) exactly.
        assert!((out[(0, 0)] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn reset_clears_history() {
        let mut diis = Diis::new(6);
        let mut e = Matrix::zeros(2, 2);
        e[(0, 0)] = 0.5;
        let _ = diis.extrapolate(Matrix::identity(2), e.clone());
        // Independent second error so B stays nonsingular and the
        // conditioning guard has no reason to shed history.
        let _ = diis.extrapolate(Matrix::identity(2).scale(2.0), e.scale(-1.0));
        assert_eq!(diis.len(), 2);
        diis.reset();
        assert!(diis.is_empty());
        // After a restart the next Fock passes through untouched.
        let f = Matrix::identity(2).scale(7.0);
        let out = diis.extrapolate(f.clone(), Matrix::zeros(2, 2));
        assert_eq!(out, f);
    }

    #[test]
    fn snapshot_restore_resumes_bitwise() {
        // Build some history, snapshot, then feed both the original and the
        // restored accelerator the same next pair: outputs must be bitwise
        // equal (the checkpoint/restart contract).
        let mut diis = Diis::new(4);
        for i in 0..3 {
            let f = Matrix::from_fn(3, 3, |r, c| (r + c) as f64 + i as f64 * 0.1);
            let mut e = Matrix::zeros(3, 3);
            e[(0, 0)] = 1.0 / (i + 1) as f64;
            e[(1, 2)] = -0.2 * i as f64;
            let _ = diis.extrapolate(f, e);
        }
        let snap = diis.snapshot();
        let mut restored = Diis::restore(snap.clone());
        assert_eq!(restored.len(), diis.len());
        assert_eq!(diis.snapshot(), snap);
        let f_next = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64 * 0.01);
        let mut e_next = Matrix::zeros(3, 3);
        e_next[(2, 2)] = 0.05;
        let a = diis.extrapolate(f_next.clone(), e_next.clone());
        let b = restored.extrapolate(f_next, e_next);
        assert_eq!(a, b, "restored DIIS diverged from the original");
    }

    #[test]
    fn rank_deficient_history_is_reconditioned_not_silently_dropped() {
        // Two pushes with *identical* error vectors make the augmented B
        // system exactly singular. The guard must drop the oldest pair,
        // fall back to the raw Fock (history exhausted at m = 1), and count
        // both the drop and the fallback.
        let mut diis = Diis::new(6);
        let mut e = Matrix::zeros(2, 2);
        e[(0, 0)] = 0.3;
        let f1 = Matrix::identity(2);
        let f2 = Matrix::identity(2).scale(2.0);
        let _ = diis.extrapolate(f1, e.clone());
        let out = diis.extrapolate(f2.clone(), e.clone());
        assert_eq!(out, f2, "degenerate history must yield the raw Fock");
        assert_eq!(diis.stats().dropped_pairs, 1);
        assert_eq!(diis.stats().raw_fallbacks, 1);
        assert_eq!(diis.stats().conditioning_events, 1);
        assert_eq!(diis.len(), 1, "the offending oldest pair must be gone");

        // With the history reconditioned, a genuinely independent third
        // pair extrapolates normally again (opposite errors → mean Fock).
        let f3 = Matrix::identity(2).scale(4.0);
        let out = diis.extrapolate(f3, e.scale(-1.0));
        assert!((out[(0, 0)] - 3.0).abs() < 1e-10, "{}", out[(0, 0)]);
        assert_eq!(diis.stats().raw_fallbacks, 1, "no new fallback");
    }

    #[test]
    fn near_duplicate_errors_trip_the_coefficient_cap() {
        // Errors differing at the last ulp pass Gaussian elimination but
        // produce O(1/ε²) coefficients — the cap must classify that as
        // ill-conditioned and recondition instead of returning garbage.
        let mut diis = Diis::new(6);
        let mut e1 = Matrix::zeros(2, 2);
        e1[(0, 0)] = 0.5;
        let e2 = e1.scale(1.0 + 1e-15);
        let e3 = e1.scale(-1.0); // independent direction
        let _ = diis.extrapolate(Matrix::identity(2), e1);
        let _ = diis.extrapolate(Matrix::identity(2).scale(2.0), e2);
        let _ = diis.extrapolate(Matrix::identity(2).scale(3.0), e3);
        let s = diis.stats();
        assert!(
            s.dropped_pairs >= 1,
            "ill-conditioned B must shed history: {s:?}"
        );
    }

    #[test]
    fn healthy_history_never_touches_the_guard() {
        let mut diis = Diis::new(6);
        let f1 = Matrix::identity(2);
        let f2 = Matrix::identity(2).scale(3.0);
        let mut e1 = Matrix::zeros(2, 2);
        e1[(0, 0)] = 1.0;
        let e2 = e1.scale(-1.0);
        let _ = diis.extrapolate(f1, e1);
        let out = diis.extrapolate(f2, e2);
        assert!((out[(0, 0)] - 2.0).abs() < 1e-10);
        assert_eq!(diis.stats(), DiisStats::default());
    }

    #[test]
    fn error_vector_vanishes_at_convergence() {
        // If F and D commute through S (e.g. all diagonal), error is zero.
        let f = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 2.0]);
        let d = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 0.0]);
        let s = Matrix::identity(2);
        let x = Matrix::identity(2);
        let e = Diis::error_vector(&f, &d, &s, &x);
        assert!(e.norm_fro() < 1e-14);
    }
}
