//! Molecular quadrature grid for the exchange-correlation integrals.
//!
//! Construction follows the standard recipe:
//!
//! * **radial**: Gauss-Chebyshev (second kind) nodes mapped onto `(0, ∞)`
//!   with the Becke transformation `r = R (1+x)/(1−x)`;
//! * **angular**: a Gauss-Legendre × uniform-φ spherical product rule (the
//!   documented substitution for Lebedev grids — a product rule of order n
//!   integrates spherical harmonics exactly up to degree n and is
//!   generatable at any order without coefficient tables);
//! * **partitioning**: Becke's smooth Voronoi weights (k = 3 sharpening
//!   passes) distribute overlapping atomic grids.

use mako_chem::molecule::{dist, Molecule};
use mako_chem::BOHR_PER_ANGSTROM;

/// One quadrature point with its combined weight.
#[derive(Debug, Clone, Copy)]
pub struct GridPoint {
    /// Position, Bohr.
    pub position: [f64; 3],
    /// Quadrature weight (includes radial Jacobian, angular weight, and the
    /// Becke partition factor).
    pub weight: f64,
}

/// The assembled molecular grid.
#[derive(Debug, Clone)]
pub struct MolecularGrid {
    /// All quadrature points.
    pub points: Vec<GridPoint>,
}

impl MolecularGrid {
    /// Build a grid with `n_radial` shells and a `n_theta × 2·n_theta`
    /// angular rule per atom. (25, 14) is a sensible production default for
    /// this reproduction; tests use smaller grids.
    pub fn build(mol: &Molecule, n_radial: usize, n_theta: usize) -> MolecularGrid {
        let angular = angular_rule(n_theta);
        let mut points = Vec::new();
        for (ai, atom) in mol.atoms.iter().enumerate() {
            // Bragg-Slater-ish size parameter: covalent radius in Bohr.
            let r_m = (atom.element.covalent_radius() * BOHR_PER_ANGSTROM).max(0.4);
            for (r, wr) in radial_rule(n_radial, r_m) {
                for &(u, v, w, wa) in &angular {
                    let p = [
                        atom.position[0] + r * u,
                        atom.position[1] + r * v,
                        atom.position[2] + r * w,
                    ];
                    let becke = becke_weight(mol, ai, p);
                    let weight = wr * wa * becke;
                    if weight > 1e-16 {
                        points.push(GridPoint {
                            position: p,
                            weight,
                        });
                    }
                }
            }
        }
        MolecularGrid { points }
    }

    /// Number of quadrature points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Integrate a scalar field given its values at the grid points.
    pub fn integrate(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.points.len());
        self.points
            .iter()
            .zip(values)
            .map(|(p, v)| p.weight * v)
            .sum()
    }
}

/// Radial nodes/weights: Gauss-Chebyshev second kind + Becke map.
/// Weights include the `r²` volume factor.
fn radial_rule(n: usize, r_m: f64) -> Vec<(f64, f64)> {
    let mut out = Vec::with_capacity(n);
    for i in 1..=n {
        let t = i as f64 * std::f64::consts::PI / (n + 1) as f64;
        let x = t.cos();
        let w_cheb = std::f64::consts::PI / (n + 1) as f64 * t.sin().powi(2);
        // Becke map r = R (1+x)/(1−x); dr/dx = 2R/(1−x)².
        let r = r_m * (1.0 + x) / (1.0 - x);
        let jac = 2.0 * r_m / (1.0 - x).powi(2);
        // Gauss-Chebyshev-II integrates f(x)·√(1−x²); divide the weight.
        let w = w_cheb / (1.0 - x * x).sqrt() * jac * r * r;
        if r.is_finite() && w.is_finite() {
            out.push((r, w));
        }
    }
    out
}

/// Angular product rule: Gauss-Legendre in cosθ × uniform in φ. Returns
/// unit vectors with weights summing to 4π.
fn angular_rule(n_theta: usize) -> Vec<(f64, f64, f64, f64)> {
    let (nodes, weights) = gauss_legendre(n_theta);
    let n_phi = 2 * n_theta;
    let wphi = 2.0 * std::f64::consts::PI / n_phi as f64;
    let mut out = Vec::with_capacity(n_theta * n_phi);
    for (ct, wt) in nodes.iter().zip(&weights) {
        let st = (1.0 - ct * ct).sqrt();
        for k in 0..n_phi {
            let phi = (k as f64 + 0.5) * wphi;
            out.push((st * phi.cos(), st * phi.sin(), *ct, wt * wphi));
        }
    }
    out
}

/// Gauss-Legendre nodes/weights on [−1, 1] via Newton iteration on P_n.
pub fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut nodes = vec![0.0f64; n];
    let mut weights = vec![0.0f64; n];
    for i in 0..n {
        // Chebyshev initial guess.
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        for _ in 0..100 {
            let (p, dp) = legendre_and_derivative(n, x);
            let dx = p / dp;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        let (_, dp) = legendre_and_derivative(n, x);
        nodes[i] = x;
        weights[i] = 2.0 / ((1.0 - x * x) * dp * dp);
    }
    (nodes, weights)
}

fn legendre_and_derivative(n: usize, x: f64) -> (f64, f64) {
    let mut p0 = 1.0f64;
    let mut p1 = x;
    if n == 0 {
        return (1.0, 0.0);
    }
    for k in 2..=n {
        let kf = k as f64;
        let p2 = ((2.0 * kf - 1.0) * x * p1 - (kf - 1.0) * p0) / kf;
        p0 = p1;
        p1 = p2;
    }
    let dp = n as f64 * (x * p1 - p0) / (x * x - 1.0);
    (p1, dp)
}

/// Becke partition weight for point `p` relative to atom `ai`.
fn becke_weight(mol: &Molecule, ai: usize, p: [f64; 3]) -> f64 {
    let n = mol.atoms.len();
    if n == 1 {
        return 1.0;
    }
    let mut cell = vec![1.0f64; n];
    for i in 0..n {
        for j in 0..i {
            let ri = dist(p, mol.atoms[i].position);
            let rj = dist(p, mol.atoms[j].position);
            let rij = dist(mol.atoms[i].position, mol.atoms[j].position);
            let mu = (ri - rj) / rij;
            // k = 3 iterations of the Becke smoothing polynomial.
            let mut f = mu;
            for _ in 0..3 {
                f = 1.5 * f - 0.5 * f * f * f;
            }
            let s_ij = 0.5 * (1.0 - f);
            cell[i] *= s_ij;
            cell[j] *= 1.0 - s_ij;
        }
    }
    let total: f64 = cell.iter().sum();
    if total <= 0.0 {
        0.0
    } else {
        cell[ai] / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mako_chem::builders;

    #[test]
    fn gauss_legendre_integrates_polynomials_exactly() {
        let (x, w) = gauss_legendre(8);
        // ∫_{-1}^{1} x^k dx for k even = 2/(k+1); odd = 0. Exact to 2n−1=15.
        for k in 0..=15usize {
            let s: f64 = x.iter().zip(&w).map(|(xi, wi)| wi * xi.powi(k as i32)).sum();
            let exact = if k % 2 == 0 { 2.0 / (k as f64 + 1.0) } else { 0.0 };
            assert!((s - exact).abs() < 1e-13, "k={k}: {s} vs {exact}");
        }
    }

    #[test]
    fn angular_weights_sum_to_sphere() {
        let rule = angular_rule(10);
        let total: f64 = rule.iter().map(|&(_, _, _, w)| w).sum();
        assert!((total - 4.0 * std::f64::consts::PI).abs() < 1e-10);
        // Integrates Y_1 components to zero.
        let sx: f64 = rule.iter().map(|&(x, _, _, w)| w * x).sum();
        assert!(sx.abs() < 1e-12);
    }

    #[test]
    fn radial_rule_integrates_gaussian() {
        // ∫₀^∞ e^{−r²} r² dr = √π/4.
        let rule = radial_rule(60, 1.0);
        let s: f64 = rule.iter().map(|&(r, w)| w * (-r * r).exp()).sum();
        let exact = std::f64::consts::PI.sqrt() / 4.0;
        assert!((s - exact).abs() < 1e-8, "{s} vs {exact}");
    }

    #[test]
    fn grid_integrates_gaussian_density() {
        // A normalized Gaussian centered between the atoms must integrate
        // to 1 on the molecular grid.
        let mol = builders::water();
        let grid = MolecularGrid::build(&mol, 40, 12);
        assert!(grid.len() > 1000);
        let alpha = 0.8f64;
        let norm = (alpha / std::f64::consts::PI).powf(1.5);
        let center = mol.atoms[0].position;
        let values: Vec<f64> = grid
            .points
            .iter()
            .map(|p| {
                let dx = p.position[0] - center[0];
                let dy = p.position[1] - center[1];
                let dz = p.position[2] - center[2];
                norm * (-alpha * (dx * dx + dy * dy + dz * dz)).exp()
            })
            .collect();
        let integral = grid.integrate(&values);
        assert!((integral - 1.0).abs() < 1e-5, "∫ρ = {integral}");
    }

    #[test]
    fn becke_weights_partition_unity() {
        let mol = builders::water();
        let p = [0.5, 0.3, 0.7];
        let total: f64 = (0..3).map(|ai| becke_weight(&mol, ai, p)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
