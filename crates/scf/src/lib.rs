//! # mako-scf
//!
//! The self-consistent-field / density-functional-theory driver of the Mako
//! reproduction: the end-to-end workflow the paper's Figures 8–10 measure.
//!
//! A DFT iteration has three stages (paper §2.1): ERI evaluation (via the
//! Mako pipelines of `mako-kernels`, scheduled by `mako-quant`), the
//! exchange-correlation treatment (numerical quadrature assembled as
//! triple-product MatMuls), and Fock-matrix diagonalization (the dense
//! symmetric eigensolver of `mako-linalg`). This crate provides:
//!
//! * [`fock`] — Coulomb/exchange (J/K) builds from screened shell-quartet
//!   batches with full 8-fold permutational symmetry, dual-stage
//!   accumulation into FP64 Fock buffers, and per-batch FP64/quantized/
//!   pruned scheduling;
//! * [`grid`] + [`xc`] — a molecular quadrature grid (Becke partitioning,
//!   Gauss-Chebyshev radial, Gauss-Legendre × uniform-φ angular) and the
//!   B3LYP exchange-correlation stack (Slater, VWN5, Becke88, LYP) with
//!   MatMul-style matrix assembly;
//! * [`diis`] — Pulay DIIS convergence acceleration;
//! * [`scf`] — restricted Hartree–Fock and restricted Kohn–Sham drivers
//!   with simulated-device timing per iteration;
//! * [`parallel`] — the multi-GPU execution model for the Figure 10
//!   scalability experiment;
//! * [`rescue`] — the self-healing layer: a convergence watchdog, a
//!   deterministic staged rescue ladder (DIIS reset → damping → level
//!   shift → quantization backoff → rollback), and non-finite containment,
//!   all provably inert on healthy runs;
//! * [`rij`] — adaptive-precision RI-J density fitting: the Coulomb matrix
//!   via two tiled O(N³) contractions against a fitted auxiliary basis,
//!   each tile independently stored in int8/fp16/bf16/tf32/fp64 under a
//!   rigorous per-element error budget, bitwise thread-invariant;
//! * [`ensemble`] — the lockstep fleet driver: N independent molecules
//!   whose same-class quartet sub-batches are fused into shared kernel
//!   launches (pricing only — every member stays bitwise identical to its
//!   solo run), with per-member isolation of DIIS, incremental state, and
//!   the rescue ladder.
#![deny(rust_2018_idioms)]


pub mod checkpoint;
pub mod diis;
pub mod ensemble;
pub mod error;
pub mod fock;
pub mod grid;
pub mod mp2;
pub mod properties;
pub mod parallel;
pub mod rescue;
pub mod rij;
pub mod scf;
pub mod xc;

pub use checkpoint::{ScfCheckpoint, CHECKPOINT_VERSION};
pub use diis::{Diis, DiisSnapshot, DiisStats};
pub use ensemble::{EnsembleConfig, EnsembleDriver, EnsembleResult};
pub use error::{CheckpointError, FockBuildError, NonFiniteStage, ScfError};
pub use fock::{
    attribute_non_finite, build_jk, FockBuildStats, FockEngineOptions, JkMatrices, NonFiniteSite,
};
pub use grid::MolecularGrid;
pub use mp2::{mp2_from_orbitals, Mp2Result};
pub use parallel::{
    build_jk_distributed, build_jk_distributed_ft, build_jk_distributed_with_options,
    FaultToleranceOptions, FtFockOutcome,
};
pub use properties::{dipole_moment, mulliken_charges, Dipole};
pub use rescue::{
    classify, RescueConfig, RescueEvent, RescueLedger, RescueStage, TrajectoryClass,
};
pub use rij::{RijConfig, RijEngine, RijJStats};
pub use scf::{
    CheckpointPolicy, DistributedScf, IncrementalPolicy, OrthDiagnostics, ScfConfig, ScfDriver,
    ScfMethod, ScfResult, ScfRunOptions,
};
pub use xc::{b3lyp, XcFunctional};
