//! Typed error taxonomy of the SCF stack.
//!
//! Library crates must never panic on anomalies a production service has to
//! survive (ROADMAP north-star): a non-positive-definite overlap, an
//! eigensolver that ran out of iterations, a rank thread that died, a
//! corrupt checkpoint. Those conditions surface here as typed errors the
//! caller can match on; binaries and tests may still `expect` at the top
//! level, where aborting is the right answer.

use mako_chem::BasisError;
use mako_linalg::LinalgError;

/// Failure of a (possibly fault-tolerant) distributed Fock build.
#[derive(Debug, Clone, PartialEq)]
pub enum FockBuildError {
    /// The build was invoked with zero ranks.
    NoRanks,
    /// Every rank in the fault plan died — there is no survivor to re-run
    /// the lost work on. `ranks` is the cluster size.
    AllRanksLost {
        /// Total ranks in the plan, all of which were lost.
        ranks: usize,
    },
    /// A rank's worker thread panicked (a real software bug, distinct from
    /// an *injected* fault, which is handled by recovery).
    RankPanicked {
        /// The rank whose thread died.
        rank: usize,
    },
    /// The fault plan covers a different number of ranks than the build was
    /// asked to run with.
    PlanMismatch {
        /// Ranks in the plan.
        plan_ranks: usize,
        /// Ranks requested.
        ranks: usize,
    },
}

impl std::fmt::Display for FockBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FockBuildError::NoRanks => write!(f, "distributed Fock build needs at least one rank"),
            FockBuildError::AllRanksLost { ranks } => {
                write!(f, "all {ranks} ranks were permanently lost; no survivor to recover on")
            }
            FockBuildError::RankPanicked { rank } => {
                write!(f, "rank {rank} worker thread panicked")
            }
            FockBuildError::PlanMismatch { plan_ranks, ranks } => {
                write!(f, "fault plan covers {plan_ranks} ranks but the build runs {ranks}")
            }
        }
    }
}

impl std::error::Error for FockBuildError {}

/// Failure to save or restore an SCF checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// Filesystem error (message carried as a string so the error stays
    /// `Clone`/`PartialEq`).
    Io(String),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
    },
    /// The file ended mid-record or a length field is inconsistent.
    Truncated,
    /// The payload fails its CRC-32: bit rot or a torn overwrite. The
    /// fingerprint cannot catch this (a flipped density bit changes no
    /// fingerprint field), so v3 checksums the whole payload.
    Corrupt {
        /// CRC recorded in the header.
        expected: u32,
        /// CRC of the payload as read.
        actual: u32,
    },
    /// The checkpoint was written by a run with different inputs (basis
    /// size, batch population, …) and cannot resume this one.
    Mismatch {
        /// Which fingerprint field disagreed.
        field: &'static str,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            CheckpointError::BadMagic => write!(f, "not a Mako SCF checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion { found } => {
                write!(f, "checkpoint format version {found} is not supported")
            }
            CheckpointError::Truncated => write!(f, "checkpoint file is truncated or corrupt"),
            CheckpointError::Corrupt { expected, actual } => write!(
                f,
                "checkpoint payload fails CRC-32 (header {expected:08x}, payload {actual:08x}) — bit rot or torn write"
            ),
            CheckpointError::Mismatch { field } => {
                write!(f, "checkpoint does not match this run: {field} differs")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> CheckpointError {
        CheckpointError::Io(e.to_string())
    }
}

/// Where in the iteration a non-finite value was first detected — the
/// containment checks run at fixed assembly points (DESIGN.md §12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonFiniteStage {
    /// NaN/Inf in the Coulomb matrix J after the ERI build.
    Coulomb,
    /// NaN/Inf in the exchange matrix K after the ERI build.
    Exchange,
    /// NaN/Inf in the assembled Fock matrix (or the DIIS extrapolate).
    Fock,
    /// The total energy evaluated to NaN/Inf.
    Energy,
    /// NaN/Inf in the density formed from the diagonalization.
    Density,
}

impl NonFiniteStage {
    /// Stable lowercase label (trace fields).
    pub fn label(&self) -> &'static str {
        match self {
            NonFiniteStage::Coulomb => "coulomb",
            NonFiniteStage::Exchange => "exchange",
            NonFiniteStage::Fock => "fock",
            NonFiniteStage::Energy => "energy",
            NonFiniteStage::Density => "density",
        }
    }
}

impl std::fmt::Display for NonFiniteStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            NonFiniteStage::Coulomb => "Coulomb matrix",
            NonFiniteStage::Exchange => "exchange matrix",
            NonFiniteStage::Fock => "Fock matrix",
            NonFiniteStage::Energy => "total energy",
            NonFiniteStage::Density => "density matrix",
        };
        f.write_str(name)
    }
}

/// Failure of an SCF run.
#[derive(Debug, Clone, PartialEq)]
pub enum ScfError {
    /// The overlap matrix is not positive definite (linearly dependent
    /// basis), so no orthonormalizer exists.
    OverlapNotPositiveDefinite {
        /// The underlying factorization failure.
        source: LinalgError,
    },
    /// Fock diagonalization failed during an iteration.
    Diagonalization {
        /// Iteration at which the eigensolver failed (0-based; the initial
        /// core-Hamiltonian guess reports iteration 0).
        iteration: usize,
        /// The underlying eigensolver failure.
        source: LinalgError,
    },
    /// The restricted driver was given an open-shell electron count.
    OpenShell {
        /// Electron count of the molecule.
        electrons: usize,
    },
    /// The basis set cannot be instantiated on the molecule (e.g. an
    /// element the set does not cover).
    Basis(BasisError),
    /// A distributed Fock build failed unrecoverably.
    FockBuild(FockBuildError),
    /// Checkpoint save or restore failed.
    Checkpoint(CheckpointError),
    /// The run was deliberately killed after `iterations` completed
    /// iterations (the chaos harness's mid-trajectory kill); the latest
    /// checkpoint, if any, carries the state to resume from.
    Killed {
        /// Completed iterations before the kill.
        iterations: usize,
    },
    /// A NaN/Inf poisoned the iteration and could not be contained (rescue
    /// disabled, no good checkpoint to roll back to, or the single rollback
    /// already spent). Garbage is never allowed to propagate silently.
    NonFinite {
        /// Iteration at which the non-finite value was detected.
        iteration: usize,
        /// Assembly point where it was first seen.
        stage: NonFiniteStage,
    },
}

impl std::fmt::Display for ScfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScfError::OverlapNotPositiveDefinite { source } => {
                write!(f, "overlap matrix is not positive definite: {source}")
            }
            ScfError::Diagonalization { iteration, source } => {
                write!(f, "Fock diagonalization failed at iteration {iteration}: {source}")
            }
            ScfError::OpenShell { electrons } => {
                write!(f, "restricted driver requires a closed shell ({electrons} electrons)")
            }
            ScfError::Basis(e) => write!(f, "basis instantiation failed: {e}"),
            ScfError::FockBuild(e) => write!(f, "distributed Fock build failed: {e}"),
            ScfError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            ScfError::Killed { iterations } => {
                write!(f, "run killed after {iterations} iterations (chaos harness)")
            }
            ScfError::NonFinite { iteration, stage } => {
                write!(f, "non-finite {stage} at iteration {iteration} (uncontained)")
            }
        }
    }
}

impl std::error::Error for ScfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScfError::OverlapNotPositiveDefinite { source }
            | ScfError::Diagonalization { source, .. } => Some(source),
            ScfError::Basis(e) => Some(e),
            ScfError::FockBuild(e) => Some(e),
            ScfError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FockBuildError> for ScfError {
    fn from(e: FockBuildError) -> ScfError {
        ScfError::FockBuild(e)
    }
}

impl From<CheckpointError> for ScfError {
    fn from(e: CheckpointError) -> ScfError {
        ScfError::Checkpoint(e)
    }
}

impl From<BasisError> for ScfError {
    fn from(e: BasisError) -> ScfError {
        ScfError::Basis(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ScfError::Diagonalization {
            iteration: 7,
            source: LinalgError::NoConvergence { index: 3 },
        };
        let msg = e.to_string();
        assert!(msg.contains("iteration 7"), "{msg}");
        assert!(msg.contains("index 3"), "{msg}");
        assert!(std::error::Error::source(&e).is_some());

        let f: ScfError = FockBuildError::AllRanksLost { ranks: 4 }.into();
        assert!(f.to_string().contains("all 4 ranks"), "{f}");

        let c: ScfError = CheckpointError::UnsupportedVersion { found: 99 }.into();
        assert!(c.to_string().contains("version 99"), "{c}");

        let n = ScfError::NonFinite {
            iteration: 4,
            stage: NonFiniteStage::Coulomb,
        };
        let msg = n.to_string();
        assert!(msg.contains("Coulomb"), "{msg}");
        assert!(msg.contains("iteration 4"), "{msg}");
    }
}
