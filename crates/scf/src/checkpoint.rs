//! SCF checkpoint/restart: versioned on-disk serialization of the full
//! mid-trajectory driver state.
//!
//! A production SCF service must survive preemption: a 64-GPU ubiquitin run
//! is hours of simulated work, and losing the whole trajectory to one node
//! eviction is not acceptable. The checkpoint captures *everything* the
//! iteration loop carries between iterations — density, previous energy,
//! residuals, DIIS history, the incremental engine's accumulators and
//! rebuild bookkeeping, the device-clock ledgers — so a resumed run replays
//! the remaining iterations **bitwise identically** to the uninterrupted
//! one (DESIGN.md §10).
//!
//! ## Format (version 3)
//!
//! Little-endian binary. `f64` values are serialized via
//! [`f64::to_bits`], never through text, so restore is bit-exact.
//!
//! ```text
//! magic   b"MAKOCKPT"            8 bytes
//! version u32                    (currently 3)
//! crc     u32                    CRC-32 (IEEE) over every byte after this field
//! fingerprint: nao u64, n_batches u64, n_quartets u64, problem_hash u64
//! scalars: next_iteration u64, e_prev, energy, residual, residual_prev,
//!          drift_bound f64; since_rebuild u64;
//!          flags u8 (bit0 was_quantized_phase, bit1 force_rebuild)
//! matrices: d, j_acc, k_acc, d_ref        (each: rows u64, cols u64, data)
//! diis: max_vectors u64, m u64, m × (fock, error) matrix pairs
//! orbital_energies: len u64, data
//! iteration_seconds: len u64, data
//! stats: 5 × u64 + 2 × f64 (FockBuildStats fields)
//! clock: n_iters u64, n_iters × IterationLedger;
//!        n_recov u64, n_recov × RecoveryLedger
//! ```
//!
//! Readers reject wrong magic, versions they don't understand, truncated
//! payloads, payloads failing their CRC ([`CheckpointError::Corrupt`] —
//! bit rot the fingerprint cannot see), and checkpoints whose fingerprint
//! disagrees with the run being resumed. Version 2 extended the
//! fingerprint beyond gross sizes (basis
//! size / batch population) with a `problem_hash` — a content hash of the
//! molecule geometry, contracted shells, device kind, method, and screening
//! configuration (see `ScfDriver::problem_fingerprint`) — so a checkpoint
//! from one tenant's job cannot be resumed against a *different* problem
//! that happens to have the same matrix shapes (e.g. a slightly perturbed
//! geometry, or the same molecule priced on a different device); version 3
//! adds the payload CRC.
//!
//! ## Durability
//!
//! All checkpoint I/O flows through a [`mako_store::Vfs`]:
//! [`ScfCheckpoint::save`]/[`ScfCheckpoint::load`] run on the real
//! filesystem, while [`ScfCheckpoint::save_via`]/[`ScfCheckpoint::load_via`]
//! take any backend — in the durability bench, the seeded fault injector.
//! Saves use the shared fsync-then-rename discipline of
//! [`mako_store::write_durable`] (sibling temp file, `fsync`, atomic
//! rename, directory sync, temp cleanup on both the error path and the next
//! attempt), so a crash mid-save never corrupts the previous checkpoint and
//! a completed save survives power loss. Transient IO errors are retried up
//! to three times with capped exponential backoff before surfacing as
//! [`CheckpointError::Io`]; an injected crash fails fast (the simulated
//! process is dead — there is nothing to retry on).

use crate::diis::DiisSnapshot;
use crate::error::CheckpointError;
use crate::fock::FockBuildStats;
use mako_accel::{DeviceClock, IterationLedger, RecoveryLedger};
use mako_linalg::Matrix;
use mako_store::{crc32, write_durable, RealVfs, Vfs, VfsError};
use std::path::Path;

const MAGIC: &[u8; 8] = b"MAKOCKPT";
/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 3;
/// Byte offset where the CRC-covered region begins (after magic, version,
/// and the CRC field itself).
const CRC_REGION_AT: usize = 16;

/// IO retry schedule for [`ScfCheckpoint::save`]: attempts and capped
/// exponential backoff between them (milliseconds of host time).
const SAVE_ATTEMPTS: u32 = 3;
const SAVE_BACKOFF_BASE_MS: u64 = 1;
const SAVE_BACKOFF_CAP_MS: u64 = 50;

/// The complete mid-trajectory state of an SCF run, captured after a whole
/// number of completed iterations.
#[derive(Debug, Clone, PartialEq)]
pub struct ScfCheckpoint {
    /// Basis size fingerprint — must match the resuming driver.
    pub nao: usize,
    /// Quartet-batch population fingerprint.
    pub n_batches: usize,
    /// Total-quartet fingerprint.
    pub n_quartets: usize,
    /// Content hash of the problem (geometry, shells, device, method,
    /// screening) — rejects cross-tenant resume against a different problem
    /// with coincidentally identical matrix shapes.
    pub problem_hash: u64,
    /// The iteration the resumed run executes next (= completed iterations).
    pub next_iteration: usize,
    /// Density matrix entering `next_iteration`.
    pub density: Matrix,
    /// Energy of the previous iteration (convergence test state).
    pub e_prev: f64,
    /// Last computed total energy.
    pub energy: f64,
    /// Scheduling residual entering `next_iteration`.
    pub residual: f64,
    /// Previous DIIS residual (divergence-guard state).
    pub residual_prev: f64,
    /// Whether the previous iteration ran the quantized phase.
    pub was_quantized_phase: bool,
    /// Incremental accumulators (zeros when not incremental).
    pub j_acc: Matrix,
    /// Exchange accumulator.
    pub k_acc: Matrix,
    /// Reference density of the accumulators.
    pub d_ref: Matrix,
    /// Incremental iterations since the last full rebuild.
    pub since_rebuild: usize,
    /// Accumulated analytic skip bound since the last rebuild.
    pub drift_bound: f64,
    /// Whether the next iteration must be a full rebuild.
    pub force_rebuild: bool,
    /// DIIS history.
    pub diis: DiisSnapshot,
    /// Orbital energies of the last diagonalization.
    pub orbital_energies: Vec<f64>,
    /// Per-iteration simulated seconds so far.
    pub iteration_seconds: Vec<f64>,
    /// Accumulated Fock statistics so far.
    pub stats: FockBuildStats,
    /// Per-iteration device-clock ledgers so far.
    pub ledgers: Vec<IterationLedger>,
    /// Per-iteration recovery ledgers so far.
    pub recoveries: Vec<RecoveryLedger>,
}

impl ScfCheckpoint {
    /// Rebuild the [`DeviceClock`] from the stored ledgers.
    pub fn clock(&self) -> DeviceClock {
        let mut clock = DeviceClock::new();
        for l in &self.ledgers {
            clock.push(*l);
        }
        for r in &self.recoveries {
            clock.push_recovery(*r);
        }
        clock
    }

    /// Serialize to the version-3 binary format (payload CRC included).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.density.as_slice().len() * 8 * 4);
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, CHECKPOINT_VERSION);
        put_u32(&mut out, 0); // CRC placeholder, patched below
        put_u64(&mut out, self.nao as u64);
        put_u64(&mut out, self.n_batches as u64);
        put_u64(&mut out, self.n_quartets as u64);
        put_u64(&mut out, self.problem_hash);
        put_u64(&mut out, self.next_iteration as u64);
        put_f64(&mut out, self.e_prev);
        put_f64(&mut out, self.energy);
        put_f64(&mut out, self.residual);
        put_f64(&mut out, self.residual_prev);
        put_f64(&mut out, self.drift_bound);
        put_u64(&mut out, self.since_rebuild as u64);
        let flags =
            (self.was_quantized_phase as u8) | ((self.force_rebuild as u8) << 1);
        out.push(flags);
        put_matrix(&mut out, &self.density);
        put_matrix(&mut out, &self.j_acc);
        put_matrix(&mut out, &self.k_acc);
        put_matrix(&mut out, &self.d_ref);
        put_u64(&mut out, self.diis.max_vectors as u64);
        put_u64(&mut out, self.diis.focks.len() as u64);
        for (f, e) in self.diis.focks.iter().zip(&self.diis.errors) {
            put_matrix(&mut out, f);
            put_matrix(&mut out, e);
        }
        put_f64_vec(&mut out, &self.orbital_energies);
        put_f64_vec(&mut out, &self.iteration_seconds);
        put_u64(&mut out, self.stats.fp64_quartets as u64);
        put_u64(&mut out, self.stats.quantized_quartets as u64);
        put_u64(&mut out, self.stats.pruned_quartets as u64);
        put_u64(&mut out, self.stats.skipped_quartets as u64);
        put_f64(&mut out, self.stats.skipped_bound);
        put_f64(&mut out, self.stats.device_seconds);
        put_u64(&mut out, self.ledgers.len() as u64);
        for l in &self.ledgers {
            put_f64(&mut out, l.eri_seconds);
            put_f64(&mut out, l.total_seconds);
            put_u64(&mut out, l.evaluated_quartets as u64);
            put_u64(&mut out, l.skipped_quartets as u64);
            put_u64(&mut out, l.pruned_quartets as u64);
            put_f64(&mut out, l.skipped_bound);
            out.push(l.rebuild as u8);
        }
        put_u64(&mut out, self.recoveries.len() as u64);
        for r in &self.recoveries {
            put_u64(&mut out, r.transient_retries as u64);
            put_f64(&mut out, r.backoff_seconds);
            put_u64(&mut out, r.straggler_ranks as u64);
            put_u64(&mut out, r.stolen_batches as u64);
            put_u64(&mut out, r.rerun_batches as u64);
            put_u64(&mut out, r.ranks_lost as u64);
            put_u64(&mut out, r.allreduce_retries as u64);
            put_u64(&mut out, r.checkpoint_saves as u64);
            put_u64(&mut out, r.checkpoint_loads as u64);
            put_f64(&mut out, r.fault_free_seconds);
            put_f64(&mut out, r.degraded_seconds);
        }
        let crc = crc32(&out[CRC_REGION_AT..]);
        out[12..16].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parse a version-3 checkpoint.
    pub fn from_bytes(bytes: &[u8]) -> Result<ScfCheckpoint, CheckpointError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        let magic = r.take(8)?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion { found: version });
        }
        let expected = r.u32()?;
        let actual = crc32(&bytes[CRC_REGION_AT..]);
        if expected != actual {
            // Checked before any structural parsing: truncation and bit rot
            // both land here, and neither may be half-interpreted.
            return Err(CheckpointError::Corrupt { expected, actual });
        }
        let nao = r.u64()? as usize;
        let n_batches = r.u64()? as usize;
        let n_quartets = r.u64()? as usize;
        let problem_hash = r.u64()?;
        let next_iteration = r.u64()? as usize;
        let e_prev = r.f64()?;
        let energy = r.f64()?;
        let residual = r.f64()?;
        let residual_prev = r.f64()?;
        let drift_bound = r.f64()?;
        let since_rebuild = r.u64()? as usize;
        let flags = r.take(1)?[0];
        let density = r.matrix()?;
        let j_acc = r.matrix()?;
        let k_acc = r.matrix()?;
        let d_ref = r.matrix()?;
        let max_vectors = r.u64()? as usize;
        let m = r.u64()? as usize;
        if m > 1 << 20 {
            return Err(CheckpointError::Truncated);
        }
        let mut focks = Vec::with_capacity(m);
        let mut errors = Vec::with_capacity(m);
        for _ in 0..m {
            focks.push(r.matrix()?);
            errors.push(r.matrix()?);
        }
        let orbital_energies = r.f64_vec()?;
        let iteration_seconds = r.f64_vec()?;
        let stats = FockBuildStats {
            fp64_quartets: r.u64()? as usize,
            quantized_quartets: r.u64()? as usize,
            pruned_quartets: r.u64()? as usize,
            skipped_quartets: r.u64()? as usize,
            skipped_bound: r.f64()?,
            device_seconds: r.f64()?,
        };
        let n_iters = r.u64()? as usize;
        if n_iters > 1 << 24 {
            return Err(CheckpointError::Truncated);
        }
        let mut ledgers = Vec::with_capacity(n_iters);
        for _ in 0..n_iters {
            ledgers.push(IterationLedger {
                eri_seconds: r.f64()?,
                total_seconds: r.f64()?,
                evaluated_quartets: r.u64()? as usize,
                skipped_quartets: r.u64()? as usize,
                pruned_quartets: r.u64()? as usize,
                skipped_bound: r.f64()?,
                rebuild: r.take(1)?[0] != 0,
            });
        }
        let n_recov = r.u64()? as usize;
        if n_recov > 1 << 24 {
            return Err(CheckpointError::Truncated);
        }
        let mut recoveries = Vec::with_capacity(n_recov);
        for _ in 0..n_recov {
            recoveries.push(RecoveryLedger {
                transient_retries: r.u64()? as usize,
                backoff_seconds: r.f64()?,
                straggler_ranks: r.u64()? as usize,
                stolen_batches: r.u64()? as usize,
                rerun_batches: r.u64()? as usize,
                ranks_lost: r.u64()? as usize,
                allreduce_retries: r.u64()? as usize,
                checkpoint_saves: r.u64()? as usize,
                checkpoint_loads: r.u64()? as usize,
                fault_free_seconds: r.f64()?,
                degraded_seconds: r.f64()?,
            });
        }
        Ok(ScfCheckpoint {
            nao,
            n_batches,
            n_quartets,
            problem_hash,
            next_iteration,
            density,
            e_prev,
            energy,
            residual,
            residual_prev,
            was_quantized_phase: flags & 1 != 0,
            j_acc,
            k_acc,
            d_ref,
            since_rebuild,
            drift_bound,
            force_rebuild: flags & 2 != 0,
            diis: DiisSnapshot {
                max_vectors,
                focks,
                errors,
            },
            orbital_energies,
            iteration_seconds,
            stats,
            ledgers,
            recoveries,
        })
    }

    /// Write to the real filesystem durably and atomically — see
    /// [`ScfCheckpoint::save_via`].
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        self.save_via(&RealVfs, path)
    }

    /// Write to `vfs` durably and atomically.
    ///
    /// The bytes go through [`mako_store::write_durable`]: a sibling temp
    /// file `fsync`ed *before* the atomic rename, so a crash at any point
    /// leaves either the previous checkpoint or the complete new one —
    /// never a torn file that merely made it to the page cache — and the
    /// temp file is cleaned up on failure instead of leaking.
    ///
    /// Transient IO errors (full disk briefly reclaimed, NFS hiccup, …) are
    /// retried up to three times with capped exponential backoff; only a
    /// persistent failure surfaces as [`CheckpointError::Io`]. An injected
    /// crash point is *not* retried — the simulated process is dead, and
    /// spinning on a dead Vfs would only distort the fault model.
    pub fn save_via(&self, vfs: &dyn Vfs, path: &Path) -> Result<(), CheckpointError> {
        let bytes = self.to_bytes();
        let mut last_err = String::new();
        for attempt in 0..SAVE_ATTEMPTS {
            if attempt > 0 {
                let ms = (SAVE_BACKOFF_BASE_MS << (attempt - 1)).min(SAVE_BACKOFF_CAP_MS);
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            match write_durable(vfs, path, &bytes) {
                Ok(()) => return Ok(()),
                Err(VfsError::Crashed) => {
                    return Err(CheckpointError::Io(format!(
                        "checkpoint save to {}: {}",
                        path.display(),
                        VfsError::Crashed
                    )))
                }
                Err(e) => last_err = e.to_string(),
            }
        }
        Err(CheckpointError::Io(format!(
            "checkpoint save to {} failed after {} attempts: {}",
            path.display(),
            SAVE_ATTEMPTS,
            last_err
        )))
    }

    /// Read a checkpoint back from the real filesystem.
    pub fn load(path: &Path) -> Result<ScfCheckpoint, CheckpointError> {
        ScfCheckpoint::load_via(&RealVfs, path)
    }

    /// Read a checkpoint back from `vfs`.
    pub fn load_via(vfs: &dyn Vfs, path: &Path) -> Result<ScfCheckpoint, CheckpointError> {
        let bytes = vfs
            .read(path)
            .map_err(|e| CheckpointError::Io(e.to_string()))?;
        ScfCheckpoint::from_bytes(&bytes)
    }

    /// Validate that this checkpoint belongs to a run with the given
    /// problem fingerprint.
    ///
    /// The size triple catches gross mismatches cheaply (and gives the more
    /// diagnostic error when shapes differ); `problem_hash` closes the
    /// cross-tenant gap where two different problems share all three sizes.
    pub fn validate(
        &self,
        nao: usize,
        n_batches: usize,
        n_quartets: usize,
        problem_hash: u64,
    ) -> Result<(), CheckpointError> {
        if self.nao != nao {
            return Err(CheckpointError::Mismatch { field: "nao" });
        }
        if self.n_batches != n_batches {
            return Err(CheckpointError::Mismatch { field: "n_batches" });
        }
        if self.n_quartets != n_quartets {
            return Err(CheckpointError::Mismatch { field: "n_quartets" });
        }
        if self.problem_hash != problem_hash {
            return Err(CheckpointError::Mismatch { field: "problem" });
        }
        Ok(())
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_f64_vec(out: &mut Vec<u8>, v: &[f64]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        put_f64(out, x);
    }
}

fn put_matrix(out: &mut Vec<u8>, m: &Matrix) {
    put_u64(out, m.rows() as u64);
    put_u64(out, m.cols() as u64);
    for &x in m.as_slice() {
        put_f64(out, x);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>, CheckpointError> {
        let n = self.u64()? as usize;
        if n > 1 << 28 {
            return Err(CheckpointError::Truncated);
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.f64()?);
        }
        Ok(v)
    }

    fn matrix(&mut self) -> Result<Matrix, CheckpointError> {
        let rows = self.u64()? as usize;
        let cols = self.u64()? as usize;
        if rows.saturating_mul(cols) > 1 << 28 {
            return Err(CheckpointError::Truncated);
        }
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(self.f64()?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScfCheckpoint {
        let m = |s: f64| Matrix::from_fn(3, 3, |i, j| s * (i as f64 + 0.1 * j as f64));
        ScfCheckpoint {
            nao: 3,
            n_batches: 7,
            n_quartets: 91,
            problem_hash: 0xDEAD_BEEF_CAFE_F00D,
            next_iteration: 4,
            density: m(1.0),
            e_prev: -74.9629,
            energy: -74.96294,
            residual: 1.25e-5,
            residual_prev: 3.5e-5,
            was_quantized_phase: true,
            j_acc: m(0.5),
            k_acc: m(0.25),
            d_ref: m(0.9),
            since_rebuild: 2,
            drift_bound: 1.5e-13,
            force_rebuild: false,
            diis: DiisSnapshot {
                max_vectors: 8,
                focks: vec![m(2.0), m(2.1)],
                errors: vec![m(0.01), m(0.005)],
            },
            orbital_energies: vec![-20.24, -1.26, 0.6],
            iteration_seconds: vec![1e-3, 8e-4, 7e-4, 6e-4],
            stats: FockBuildStats {
                fp64_quartets: 1000,
                quantized_quartets: 50,
                pruned_quartets: 7,
                skipped_quartets: 123,
                skipped_bound: 4.2e-11,
                device_seconds: 3.1e-3,
            },
            ledgers: vec![IterationLedger {
                eri_seconds: 9e-4,
                total_seconds: 1e-3,
                evaluated_quartets: 1000,
                skipped_quartets: 3,
                pruned_quartets: 1,
                skipped_bound: 1e-12,
                rebuild: true,
            }],
            recoveries: vec![RecoveryLedger {
                transient_retries: 2,
                backoff_seconds: 3e-3,
                rerun_batches: 11,
                ranks_lost: 1,
                fault_free_seconds: 0.2,
                degraded_seconds: 0.31,
                ..RecoveryLedger::default()
            }],
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let ck = sample();
        let bytes = ck.to_bytes();
        let back = ScfCheckpoint::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back, ck);
        // Serialization is deterministic.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn roundtrip_preserves_nonfinite_and_signed_zero() {
        // f64-via-bits must survive the values text formatting mangles.
        let mut ck = sample();
        ck.e_prev = f64::INFINITY;
        ck.residual_prev = f64::NAN;
        ck.drift_bound = -0.0;
        let back = ScfCheckpoint::from_bytes(&ck.to_bytes()).expect("roundtrip");
        assert!(back.e_prev.is_infinite());
        assert!(back.residual_prev.is_nan());
        assert_eq!(back.drift_bound.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let ck = sample();
        let bytes = ck.to_bytes();

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(
            ScfCheckpoint::from_bytes(&bad),
            Err(CheckpointError::BadMagic)
        );

        let mut newer = bytes.clone();
        newer[8] = 99; // version little-endian low byte
        assert_eq!(
            ScfCheckpoint::from_bytes(&newer),
            Err(CheckpointError::UnsupportedVersion { found: 99 })
        );

        // Truncation inside the CRC region is caught by the checksum
        // (checked before any structural parsing).
        let truncated = &bytes[..bytes.len() - 5];
        assert!(matches!(
            ScfCheckpoint::from_bytes(truncated),
            Err(CheckpointError::Corrupt { .. })
        ));
        // Truncation inside the fixed header is a structural error.
        assert_eq!(
            ScfCheckpoint::from_bytes(&bytes[..10]),
            Err(CheckpointError::Truncated)
        );
    }

    #[test]
    fn one_bit_flip_at_every_64_byte_boundary_is_rejected() {
        let bytes = sample().to_bytes();
        assert!(bytes.len() > 512, "sample must span many boundaries");
        for at in (0..bytes.len()).step_by(64) {
            let mut rotted = bytes.clone();
            rotted[at] ^= 0x01;
            let res = ScfCheckpoint::from_bytes(&rotted);
            assert!(
                matches!(
                    res,
                    Err(CheckpointError::Corrupt { .. })
                        | Err(CheckpointError::BadMagic)
                        | Err(CheckpointError::UnsupportedVersion { .. })
                ),
                "flip at byte {at} must be rejected, got {res:?}"
            );
        }
    }

    #[test]
    fn truncation_at_every_64_byte_boundary_is_rejected() {
        let bytes = sample().to_bytes();
        for cut in (0..bytes.len()).step_by(64) {
            let res = ScfCheckpoint::from_bytes(&bytes[..cut]);
            assert!(
                matches!(
                    res,
                    Err(CheckpointError::Truncated) | Err(CheckpointError::Corrupt { .. })
                ),
                "truncation to {cut} bytes must be rejected, got {res:?}"
            );
        }
    }

    #[test]
    fn flipping_the_stored_crc_itself_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[13] ^= 0x40; // inside the CRC field
        assert!(matches!(
            ScfCheckpoint::from_bytes(&bytes),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn save_failure_does_not_leak_a_tmp_file() {
        use mako_store::{tmp_path, FaultProfile, FaultVfs};
        let ck = sample();
        // Every write fails: the save exhausts its retries and must sweep
        // its own temp residue each time.
        let vfs = FaultVfs::new(FaultProfile {
            seed: 9,
            crash_at: None,
            write_fault_rate: 1.0,
            bitrot_rate: 0.0,
        });
        let path = Path::new("/ck/scf.ckpt");
        vfs.create_dir_all(Path::new("/ck")).expect("mkdir");
        match ck.save_via(&vfs, path) {
            Err(CheckpointError::Io(msg)) => assert!(msg.contains("3 attempts"), "{msg}"),
            other => panic!("expected Io, got {other:?}"),
        }
        assert!(
            !vfs.exists(&tmp_path(path)),
            "failed save must not leak its temp file"
        );
        assert!(!vfs.exists(path), "no torn destination either");
    }

    #[test]
    fn save_and_load_roundtrip_through_a_fault_free_vfs() {
        use mako_store::FaultVfs;
        let ck = sample();
        let vfs = FaultVfs::quiet();
        let path = Path::new("/ck/scf.ckpt");
        vfs.create_dir_all(Path::new("/ck")).expect("mkdir");
        ck.save_via(&vfs, path).expect("save");
        let back = ScfCheckpoint::load_via(&vfs, path).expect("load");
        assert_eq!(back, ck);
    }

    #[test]
    fn fingerprint_validation() {
        let ck = sample();
        let hash = ck.problem_hash;
        assert!(ck.validate(3, 7, 91, hash).is_ok());
        assert_eq!(
            ck.validate(4, 7, 91, hash),
            Err(CheckpointError::Mismatch { field: "nao" })
        );
        assert_eq!(
            ck.validate(3, 8, 91, hash),
            Err(CheckpointError::Mismatch { field: "n_batches" })
        );
        assert_eq!(
            ck.validate(3, 7, 90, hash),
            Err(CheckpointError::Mismatch { field: "n_quartets" })
        );
        // Same shapes, different problem content: the v2 hash catches it.
        assert_eq!(
            ck.validate(3, 7, 91, hash ^ 1),
            Err(CheckpointError::Mismatch { field: "problem" })
        );
    }

    #[test]
    fn save_surfaces_persistent_io_failure_as_typed_error() {
        let ck = sample();
        let path = std::env::temp_dir()
            .join("mako_ckpt_no_such_dir")
            .join("deeper")
            .join("scf.ckpt");
        match ck.save(&path) {
            Err(CheckpointError::Io(msg)) => {
                assert!(msg.contains("3 attempts"), "retry count in message: {msg}");
            }
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn save_load_disk_roundtrip() {
        let ck = sample();
        let dir = std::env::temp_dir().join("mako_ckpt_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("scf.ckpt");
        ck.save(&path).expect("save");
        let back = ScfCheckpoint::load(&path).expect("load");
        assert_eq!(back, ck);
        std::fs::remove_file(&path).ok();
    }
}
