//! MP2 correlation energy on top of a converged RHF reference.
//!
//! Second-order Møller–Plesset theory is the natural "next rung" for a
//! matrix-aligned stack (the paper's related work runs biomolecular MP2 on
//! GPUs): the dominant cost is the AO→MO four-index transformation, four
//! successive GEMM-shaped contractions — exactly the execution pattern Mako
//! targets. This implementation stores the AO tensor densely, so it is meant
//! for the validation-scale systems (STO-3G suite), not production sizes.
//!
//! `E(2) = Σ_{ijab} (ia|jb) · [2 (ia|jb) − (ib|ja)] / (εᵢ + εⱼ − εₐ − ε_b)`.

use mako_chem::{AoLayout, Molecule, Shell};
use mako_eri::mmd::{eri_quartet_mmd, shell_pair};
use mako_linalg::Matrix;

/// Result of an MP2 evaluation.
#[derive(Debug, Clone)]
pub struct Mp2Result {
    /// The correlation energy (negative).
    pub e_corr: f64,
    /// Same-spin (triplet-like) component.
    pub e_ss: f64,
    /// Opposite-spin component.
    pub e_os: f64,
}

/// Compute the closed-shell MP2 correlation energy.
///
/// * `c` — MO coefficients (AO × MO, columns ordered by `eps`),
/// * `eps` — orbital energies ascending,
/// * `n_occ` — doubly occupied orbital count.
///
/// Builds the dense AO ERI tensor via the MMD engine (O(N⁴) memory — small
/// systems only) and performs the quarter transformations as explicit
/// loops-over-GEMM-shaped contractions.
pub fn mp2_energy(
    shells: &[Shell],
    layout: &AoLayout,
    _mol: &Molecule,
    c: &Matrix,
    eps: &[f64],
    n_occ: usize,
) -> Mp2Result {
    let n = layout.nao;
    assert_eq!(c.rows(), n);
    let n_virt = n - n_occ;
    if n_virt == 0 {
        return Mp2Result {
            e_corr: 0.0,
            e_ss: 0.0,
            e_os: 0.0,
        };
    }

    // Dense AO tensor (μν|λσ).
    let idx = |a: usize, b: usize, cc: usize, d: usize| ((a * n + b) * n + cc) * n + d;
    let mut ao = vec![0.0f64; n * n * n * n];
    for (si, sh_i) in shells.iter().enumerate() {
        for (sj, sh_j) in shells.iter().enumerate() {
            let pab = shell_pair(sh_i, sh_j);
            for (sk, sh_k) in shells.iter().enumerate() {
                for (sl, sh_l) in shells.iter().enumerate() {
                    let pcd = shell_pair(sh_k, sh_l);
                    let t = eri_quartet_mmd(&pab, &pcd);
                    let (oi, oj, ok, ol) = (
                        layout.shell_offsets[si],
                        layout.shell_offsets[sj],
                        layout.shell_offsets[sk],
                        layout.shell_offsets[sl],
                    );
                    for a in 0..t.dims[0] {
                        for b in 0..t.dims[1] {
                            for cc in 0..t.dims[2] {
                                for d in 0..t.dims[3] {
                                    ao[idx(oi + a, oj + b, ok + cc, ol + d)] =
                                        t.get(a, b, cc, d);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Quarter transformations: (μν|λσ) → (iν|λσ) → (ia|λσ) → (ia|jσ) → (ia|jb).
    // Each step is a GEMM over one index; written as explicit contractions
    // on the flattened tensor for clarity at validation scale.
    let occ = |o: usize| o; // MO columns 0..n_occ
    let virt = |v: usize| n_occ + v;

    // Step 1+2: half-transform the bra pair to (ia|λσ).
    let mut half = vec![0.0f64; n_occ * n_virt * n * n];
    let hidx = |i: usize, a: usize, l: usize, s: usize| ((i * n_virt + a) * n + l) * n + s;
    for i in 0..n_occ {
        for a in 0..n_virt {
            for l in 0..n {
                for s in 0..n {
                    let mut acc = 0.0;
                    for mu in 0..n {
                        let ci = c[(mu, occ(i))];
                        if ci == 0.0 {
                            continue;
                        }
                        let mut inner = 0.0;
                        for nu in 0..n {
                            inner += c[(nu, virt(a))] * ao[idx(mu, nu, l, s)];
                        }
                        acc += ci * inner;
                    }
                    half[hidx(i, a, l, s)] = acc;
                }
            }
        }
    }
    drop(ao);

    // Step 3+4: transform the ket pair, accumulating the MP2 sum on the fly
    // (no (ia|jb) tensor is materialized).
    let mut e_os = 0.0f64;
    let mut e_ss = 0.0f64;
    let mut iajb = Matrix::zeros(n_virt, n_virt);
    for i in 0..n_occ {
        for j in 0..n_occ {
            // (ia|jb) for all a, b at fixed (i, j).
            for a in 0..n_virt {
                for b in 0..n_virt {
                    let mut acc = 0.0;
                    for l in 0..n {
                        let cj = c[(l, occ(j))];
                        if cj == 0.0 {
                            continue;
                        }
                        let mut inner = 0.0;
                        for s in 0..n {
                            inner += c[(s, virt(b))] * half[hidx(i, a, l, s)];
                        }
                        acc += cj * inner;
                    }
                    iajb[(a, b)] = acc;
                }
            }
            for a in 0..n_virt {
                for b in 0..n_virt {
                    let v = iajb[(a, b)];
                    let w = iajb[(b, a)]; // (ib|ja)
                    let denom = eps[occ(i)] + eps[occ(j)] - eps[virt(a)] - eps[virt(b)];
                    e_os += v * v / denom;
                    e_ss += v * (v - w) / denom;
                }
            }
        }
    }

    Mp2Result {
        e_corr: e_os + e_ss,
        e_ss,
        e_os,
    }
}

/// Convenience: run MP2 from a converged [`crate::ScfResult`]-style pair of
/// orbital data.
pub fn mp2_from_orbitals(
    shells: &[Shell],
    mol: &Molecule,
    c: &Matrix,
    eps: &[f64],
) -> Mp2Result {
    let layout = AoLayout::new(shells);
    let n_occ = mol.n_electrons() / 2;
    mp2_energy(shells, &layout, mol, c, eps, n_occ)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scf::{ScfConfig, ScfDriver};
    use mako_chem::basis::sto3g::sto3g;
    use mako_chem::builders;
    use mako_eri::one_electron_matrices;
    use mako_linalg::{eigh, gemm, sym_inv_sqrt, Transpose};

    /// Recover MO coefficients from a converged density via one extra Fock
    /// diagonalization of H within the SCF machinery — here we simply rerun
    /// the driver and rebuild C from the final density-consistent Fock.
    fn orbitals_for(mol: &Molecule) -> (Vec<Shell>, Matrix, Vec<f64>) {
        let basis = sto3g();
        let shells = basis.shells_for(mol);
        let res = ScfDriver::new(mol, &basis, ScfConfig::default()).run().expect("scf run");
        assert!(res.converged);
        // Rebuild C by diagonalizing the converged Fock implied by D:
        // use the generalized eigenproblem of the *core* + J/K of D via the
        // driver's own result: simplest faithful route is to rediagonalize
        // the Fock built from the converged density.
        let layout = mako_chem::AoLayout::new(&shells);
        let (s, t, v) = one_electron_matrices(&shells, mol);
        let h = t.add(&v);
        let x = sym_inv_sqrt(&s, 1e-10).unwrap();
        // Dense J/K from the converged density (small system).
        let n = layout.nao;
        let mut f = h.clone();
        for (si, sh_i) in shells.iter().enumerate() {
            for (sj, sh_j) in shells.iter().enumerate() {
                let pab = shell_pair(sh_i, sh_j);
                for (sk, sh_k) in shells.iter().enumerate() {
                    for (sl, sh_l) in shells.iter().enumerate() {
                        let pcd = shell_pair(sh_k, sh_l);
                        let tq = eri_quartet_mmd(&pab, &pcd);
                        let (oi, oj, ok, ol) = (
                            layout.shell_offsets[si],
                            layout.shell_offsets[sj],
                            layout.shell_offsets[sk],
                            layout.shell_offsets[sl],
                        );
                        for a in 0..tq.dims[0] {
                            for b in 0..tq.dims[1] {
                                for cc in 0..tq.dims[2] {
                                    for d in 0..tq.dims[3] {
                                        let val = tq.get(a, b, cc, d);
                                        // F += D_{λσ} [2 (μν|λσ) − (μλ|νσ)]
                                        f[(oi + a, oj + b)] +=
                                            2.0 * res.density[(ok + cc, ol + d)] * val;
                                        f[(oi + a, ok + cc)] -=
                                            res.density[(oj + b, ol + d)] * val;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        f.symmetrize();
        let fp = gemm(&gemm(&x, Transpose::Yes, &f, Transpose::No), Transpose::No, &x, Transpose::No);
        let ed = eigh(&fp).unwrap();
        let c = gemm(&x, Transpose::No, &ed.vectors, Transpose::No);
        let _ = n;
        (shells, c, ed.values)
    }

    #[test]
    fn water_mp2_correlation_is_negative_and_sane() {
        let mol = builders::water();
        let (shells, c, eps) = orbitals_for(&mol);
        let mp2 = mp2_from_orbitals(&shells, &mol, &c, &eps);
        // H2O/STO-3G MP2 correlation energy is ≈ −0.049 Ha (Crawford
        // programming-project reference ballpark: −0.049150).
        assert!(mp2.e_corr < -0.02 && mp2.e_corr > -0.10, "E(2) = {}", mp2.e_corr);
        assert!(mp2.e_os < 0.0 && mp2.e_ss < 0.0);
        assert!(
            (mp2.e_corr - (mp2.e_os + mp2.e_ss)).abs() < 1e-14,
            "components sum"
        );
        // Opposite-spin dominates in closed-shell MP2.
        assert!(mp2.e_os.abs() > mp2.e_ss.abs());
    }

    #[test]
    fn h2_mp2_size_consistency() {
        // MP2 is size-consistent: E(2) of two distant H2 equals twice one.
        let mut h2 = Molecule::new("H2");
        h2.atoms.push(mako_chem::Atom {
            element: mako_chem::Element::H,
            position: [0.0, 0.0, 0.0],
        });
        h2.atoms.push(mako_chem::Atom {
            element: mako_chem::Element::H,
            position: [0.0, 0.0, 1.4],
        });
        let (shells, c, eps) = orbitals_for(&h2);
        let one = mp2_from_orbitals(&shells, &h2, &c, &eps);

        let mut dimer = h2.clone();
        for atom in &h2.atoms {
            let mut a = *atom;
            a.position[0] += 60.0;
            dimer.atoms.push(a);
        }
        let (shells2, c2, eps2) = orbitals_for(&dimer);
        let two = mp2_from_orbitals(&shells2, &dimer, &c2, &eps2);
        assert!(
            (two.e_corr - 2.0 * one.e_corr).abs() < 1e-6,
            "{} vs 2×{}",
            two.e_corr,
            one.e_corr
        );
    }

    #[test]
    fn minimal_basis_h2_has_single_pair_excitation() {
        // H2/STO-3G: 1 occupied, 1 virtual → E(2) = (ia|ia)² ·
        // [2−1] / denom; the same-spin part vanishes identically.
        let mut h2 = Molecule::new("H2");
        h2.atoms.push(mako_chem::Atom {
            element: mako_chem::Element::H,
            position: [0.0, 0.0, 0.0],
        });
        h2.atoms.push(mako_chem::Atom {
            element: mako_chem::Element::H,
            position: [0.0, 0.0, 1.4],
        });
        let (shells, c, eps) = orbitals_for(&h2);
        let mp2 = mp2_from_orbitals(&shells, &h2, &c, &eps);
        assert!(mp2.e_ss.abs() < 1e-14, "same-spin must vanish: {}", mp2.e_ss);
        assert!(mp2.e_corr < -0.005 && mp2.e_corr > -0.05, "E(2) = {}", mp2.e_corr);
    }

    use mako_eri::mmd::{eri_quartet_mmd, shell_pair};
}
