//! Self-healing SCF: convergence watchdog and staged rescue ladder.
//!
//! PR 3 made the *distributed* layer fault-tolerant; this module does the
//! same for the *numerical* layer. A per-iteration watchdog classifies the
//! trajectory from the energy and DIIS-residual history (see
//! [`classify`]), and a deterministic rescue ladder escalates one stage per
//! anomaly, with a grace period between stages so each intervention gets a
//! chance to act:
//!
//! 1. **DIIS reset** — drop the extrapolation history that steered the
//!    trajectory into trouble (plus a full rebuild on incremental runs);
//! 2. **density damping** — mix `D ← (1−α)·D_new + α·D_old` with α decaying
//!    geometrically back to zero once the trajectory recovers;
//! 3. **level shifting** — raise the virtual block by σ via
//!    `F ← F + σ·(S − S·D·S)` with σ on the same decay schedule;
//! 4. **quantization backoff** — force the `QuantSchedule` to the FP64
//!    reference and full (non-incremental) rebuilds, so quantization noise
//!    and screening drift cannot be what stalls convergence;
//! 5. **rollback** — restore the last good in-memory [`ScfCheckpoint`]
//!    (PR 3 infra) with tightened settings (fresh DIIS, damping re-armed,
//!    FP64 backoff kept).
//!
//! Every transition is recorded in a [`RescueLedger`] and emitted as a
//! `scf.rescue` span via `mako-trace`. The whole subsystem is **provably
//! inert on healthy runs**: the watchdog only *reads* the trajectory, and
//! until a stage fires no floating-point operation of the driver changes,
//! so enabled-vs-disabled runs are bitwise identical (DESIGN.md §12, the
//! golden inertness suite, and `rescue_scf_bench` all pin this).

use crate::checkpoint::ScfCheckpoint;

/// Watchdog classification of the SCF trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrajectoryClass {
    /// Converging (or still in warm-up): no intervention.
    Healthy,
    /// The residual has stopped decaying while far from convergence.
    Stagnating,
    /// The energy alternates sign of ΔE with sustained amplitude — the
    /// classic two-state SCF oscillation.
    Oscillating,
    /// The residual (or energy) is growing.
    Diverging,
    /// The latest energy or residual is NaN/Inf.
    NonFinite,
}

impl TrajectoryClass {
    /// Stable lowercase label (ledger display, trace fields).
    pub fn label(&self) -> &'static str {
        match self {
            TrajectoryClass::Healthy => "healthy",
            TrajectoryClass::Stagnating => "stagnating",
            TrajectoryClass::Oscillating => "oscillating",
            TrajectoryClass::Diverging => "diverging",
            TrajectoryClass::NonFinite => "non_finite",
        }
    }
}

/// A rung of the rescue ladder, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RescueStage {
    /// Stage 1: drop the DIIS history (and force a full rebuild on
    /// incremental runs).
    DiisReset,
    /// Stage 2: arm density damping at `damping_start`.
    Damp,
    /// Stage 3: arm level shifting of the virtual block at `level_shift`.
    LevelShift,
    /// Stage 4: force the FP64-reference schedule and full rebuilds.
    QuantBackoff,
    /// Stage 5: restore the last good checkpoint with tightened settings.
    Rollback,
}

impl RescueStage {
    /// Stable lowercase label (ledger display, trace fields).
    pub fn label(&self) -> &'static str {
        match self {
            RescueStage::DiisReset => "diis_reset",
            RescueStage::Damp => "damp",
            RescueStage::LevelShift => "level_shift",
            RescueStage::QuantBackoff => "quant_backoff",
            RescueStage::Rollback => "rollback",
        }
    }
}

/// Watchdog thresholds and ladder schedule. The defaults are deliberately
/// conservative: on a trajectory making even slow steady progress nothing
/// fires (the inertness contract); the classifier only trips on sustained
/// growth, sustained sign-alternation, or a residual that is flat across
/// the whole window while far from convergence.
#[derive(Debug, Clone)]
pub struct RescueConfig {
    /// Trailing window (iterations) the classifier examines.
    pub window: usize,
    /// Iterations of history required before the watchdog may fire at all
    /// (warm-up: the first SCF steps legitimately thrash).
    pub min_history: usize,
    /// Diverging when the latest residual exceeds this factor times the
    /// window minimum.
    pub diverge_factor: f64,
    /// Diverging when the latest energy sits this far (Hartree) above the
    /// window minimum.
    pub energy_rise_cap: f64,
    /// Stagnating when the residual retained more than this fraction of its
    /// value across a full window (i.e. decayed less than `1 − fraction`).
    pub stagnation_fraction: f64,
    /// Oscillating additionally requires the latest |ΔE| to stay above this
    /// fraction of the window's largest |ΔE| (a *decaying* oscillation is
    /// healthy ringing, not an anomaly).
    pub osc_amplitude_floor: f64,
    /// Iterations between ladder escalations, so each stage can act before
    /// the next fires.
    pub grace: usize,
    /// Initial density-mixing factor α of stage 2.
    pub damping_start: f64,
    /// Geometric per-iteration decay of α.
    pub damping_decay: f64,
    /// α below this disarms damping entirely.
    pub damping_floor: f64,
    /// Initial virtual-block shift σ (Hartree) of stage 3.
    pub level_shift: f64,
    /// Geometric per-iteration decay of σ.
    pub shift_decay: f64,
    /// σ below this disarms the shift entirely.
    pub shift_floor: f64,
}

impl Default for RescueConfig {
    fn default() -> RescueConfig {
        RescueConfig {
            window: 6,
            min_history: 4,
            diverge_factor: 3.0,
            energy_rise_cap: 1.0,
            stagnation_fraction: 0.95,
            osc_amplitude_floor: 0.25,
            grace: 2,
            damping_start: 0.7,
            damping_decay: 0.85,
            damping_floor: 0.05,
            level_shift: 1.0,
            shift_decay: 0.9,
            shift_floor: 1e-3,
        }
    }
}

/// Classify a trajectory from its energy and DIIS-residual history
/// (oldest first, both the same length; the driver appends one entry per
/// completed iteration). Pure function — the watchdog never touches the
/// numerics it observes.
///
/// Contract (pinned by the property suite):
/// * any monotonically converging trajectory — energy non-increasing,
///   residual decaying by at least a few percent per iteration — is always
///   [`TrajectoryClass::Healthy`];
/// * sustained residual growth or sustained constant-amplitude ΔE
///   alternation is flagged within one window of history.
pub fn classify(
    energies: &[f64],
    residuals: &[f64],
    cfg: &RescueConfig,
    e_tol: f64,
) -> TrajectoryClass {
    let n = energies.len().min(residuals.len());
    if n == 0 {
        return TrajectoryClass::Healthy;
    }
    let e_last = energies[n - 1];
    let r_last = residuals[n - 1];
    if !e_last.is_finite() || !r_last.is_finite() {
        return TrajectoryClass::NonFinite;
    }
    if n < cfg.min_history.max(2) {
        return TrajectoryClass::Healthy;
    }
    // Never fire inside the convergence basin: the driver's own residual
    // bar is √e_tol, and relative wobble below it is normal endgame noise.
    if r_last < e_tol.sqrt() {
        return TrajectoryClass::Healthy;
    }
    let w = cfg.window.min(n);
    let e_w = &energies[n - w..];
    let r_w = &residuals[n - w..];
    let r_min = r_w.iter().copied().fold(f64::INFINITY, f64::min);
    let e_min = e_w.iter().copied().fold(f64::INFINITY, f64::min);

    // Diverging: the residual blew up relative to the window minimum, or
    // the energy climbed far above it.
    if r_last > cfg.diverge_factor * r_min || e_last > e_min + cfg.energy_rise_cap {
        return TrajectoryClass::Diverging;
    }

    // Oscillating: ΔE alternates sign at every step of the window and the
    // latest amplitude has not collapsed.
    if w >= 4 {
        let de: Vec<f64> = e_w.windows(2).map(|p| p[1] - p[0]).collect();
        let alternating = de.windows(2).all(|p| p[0] * p[1] < 0.0);
        let max_de = de.iter().fold(0.0f64, |a, b| a.max(b.abs()));
        let last_de = de.last().copied().unwrap_or(0.0).abs();
        if alternating && max_de > e_tol && last_de > cfg.osc_amplitude_floor * max_de {
            return TrajectoryClass::Oscillating;
        }
    }

    // Stagnating: across a *full* window the residual barely moved while
    // still an order of magnitude above the convergence bar.
    if w >= cfg.window
        && r_last > cfg.stagnation_fraction * r_w[0]
        && r_last > 10.0 * e_tol.sqrt()
    {
        return TrajectoryClass::Stagnating;
    }
    TrajectoryClass::Healthy
}

/// One recorded watchdog intervention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RescueEvent {
    /// Iteration (0-based) at which the stage fired.
    pub iteration: usize,
    /// What the watchdog saw.
    pub classification: TrajectoryClass,
    /// The ladder stage applied.
    pub stage: RescueStage,
    /// Stage parameter: α for damping, σ for level shifting, 0 otherwise.
    pub detail: f64,
}

/// Chronological record of every rescue intervention of a run. Empty on a
/// healthy run — and the run is then bitwise identical to one with rescue
/// disabled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RescueLedger {
    events: Vec<RescueEvent>,
}

impl RescueLedger {
    /// All interventions, oldest first.
    pub fn events(&self) -> &[RescueEvent] {
        &self.events
    }

    /// The stage sequence alone — what the golden suite pins.
    pub fn stage_sequence(&self) -> Vec<RescueStage> {
        self.events.iter().map(|e| e.stage).collect()
    }

    /// Number of interventions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the run needed no rescue at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Compact human-readable summary, e.g.
    /// `"iter 12 oscillating→diis_reset; iter 15 oscillating→damp"`.
    pub fn summary(&self) -> String {
        self.events
            .iter()
            .map(|e| {
                format!(
                    "iter {} {}→{}",
                    e.iteration,
                    e.classification.label(),
                    e.stage.label()
                )
            })
            .collect::<Vec<_>>()
            .join("; ")
    }

    pub(crate) fn push(&mut self, event: RescueEvent) {
        self.events.push(event);
    }
}

/// Driver-side rescue engine: owns the trajectory history, the ladder
/// level, the active damping/shift values, and the last good checkpoint.
///
/// The driver consults the accessors ([`damping`](Self::damping),
/// [`shift`](Self::shift), [`quant_backoff`](Self::quant_backoff)) at fixed
/// points of the iteration; all of them return "off" until a stage fires,
/// which is what makes the subsystem inert on healthy runs.
pub struct RescueState {
    cfg: RescueConfig,
    e_tol: f64,
    energies: Vec<f64>,
    residuals: Vec<f64>,
    level: usize,
    cooldown: usize,
    damping: Option<f64>,
    shift: Option<f64>,
    backoff: bool,
    rollback_done: bool,
    best_residual: f64,
    good: Option<Box<ScfCheckpoint>>,
    ledger: RescueLedger,
}

impl RescueState {
    /// Fresh engine (ladder at level 0, no history).
    pub fn new(cfg: RescueConfig, e_tol: f64) -> RescueState {
        RescueState {
            cfg,
            e_tol,
            energies: Vec::new(),
            residuals: Vec::new(),
            level: 0,
            cooldown: 0,
            damping: None,
            shift: None,
            backoff: false,
            rollback_done: false,
            best_residual: f64::INFINITY,
            good: None,
            ledger: RescueLedger::default(),
        }
    }

    /// Record one completed iteration and classify the trajectory.
    pub fn observe(&mut self, energy: f64, residual: f64) -> TrajectoryClass {
        self.energies.push(energy);
        self.residuals.push(residual);
        // Bound the history: the classifier only reads one window.
        let keep = 4 * self.cfg.window.max(self.cfg.min_history) + 4;
        if self.energies.len() > keep {
            let cut = self.energies.len() - keep;
            self.energies.drain(..cut);
            self.residuals.drain(..cut);
        }
        classify(&self.energies, &self.residuals, &self.cfg, self.e_tol)
    }

    /// Offer a good-state snapshot. Called on every healthy iteration; the
    /// engine keeps the snapshot with the best residual seen so far as the
    /// rollback target. The closure runs only when the snapshot is taken.
    pub fn note_healthy(&mut self, residual: f64, snapshot: impl FnOnce() -> ScfCheckpoint) {
        if residual < self.best_residual {
            self.best_residual = residual;
            self.good = Some(Box::new(snapshot()));
        }
    }

    /// Escalate the ladder one stage for an anomalous classification.
    /// Returns the stage the driver must now apply, or `None` when healthy,
    /// inside the grace period, or the ladder is exhausted. The engine's
    /// own knobs (damping, shift, backoff) are already updated on return.
    pub fn escalate(&mut self, iteration: usize, class: TrajectoryClass) -> Option<RescueStage> {
        if class == TrajectoryClass::Healthy {
            self.cooldown = self.cooldown.saturating_sub(1);
            return None;
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }
        let next = self.level + 1;
        let (stage, detail) = match next {
            1 => (RescueStage::DiisReset, 0.0),
            2 => {
                self.damping = Some(self.cfg.damping_start);
                (RescueStage::Damp, self.cfg.damping_start)
            }
            3 => {
                self.shift = Some(self.cfg.level_shift);
                (RescueStage::LevelShift, self.cfg.level_shift)
            }
            4 => {
                self.backoff = true;
                (RescueStage::QuantBackoff, 0.0)
            }
            5 if !self.rollback_done && self.good.is_some() => {
                self.arm_rollback();
                (RescueStage::Rollback, 0.0)
            }
            _ => return None, // ladder exhausted
        };
        self.level = next;
        self.cooldown = self.cfg.grace;
        self.ledger.push(RescueEvent {
            iteration,
            classification: class,
            stage,
            detail,
        });
        Some(stage)
    }

    /// Non-finite containment: jump straight to rollback (the only stage
    /// that can undo a poisoned state). Returns `true` when a rollback
    /// target exists and has not been spent; the driver then restores from
    /// [`rollback_checkpoint`](Self::rollback_checkpoint). `false` means
    /// the run must fail with `ScfError::NonFinite`.
    pub fn contain_non_finite(&mut self, iteration: usize) -> bool {
        if self.rollback_done || self.good.is_none() {
            return false;
        }
        self.arm_rollback();
        self.level = 5;
        self.cooldown = self.cfg.grace;
        self.ledger.push(RescueEvent {
            iteration,
            classification: TrajectoryClass::NonFinite,
            stage: RescueStage::Rollback,
            detail: 0.0,
        });
        true
    }

    /// Tightened post-rollback settings: damping re-armed at full strength,
    /// FP64 backoff on, trajectory history cleared (the restored state
    /// starts a fresh window), rollback spent.
    fn arm_rollback(&mut self) {
        self.rollback_done = true;
        self.backoff = true;
        self.damping = Some(self.cfg.damping_start);
        self.energies.clear();
        self.residuals.clear();
    }

    /// The checkpoint a just-fired rollback restores. Present exactly when
    /// [`escalate`]/[`contain_non_finite`] returned the rollback stage.
    pub fn rollback_checkpoint(&self) -> Option<&ScfCheckpoint> {
        self.good.as_deref()
    }

    /// Decay the active damping and shift toward "off". Called once per
    /// iteration, after their values were consumed.
    pub fn decay(&mut self) {
        if let Some(a) = self.damping {
            let a = a * self.cfg.damping_decay;
            self.damping = (a >= self.cfg.damping_floor).then_some(a);
        }
        if let Some(s) = self.shift {
            let s = s * self.cfg.shift_decay;
            self.shift = (s >= self.cfg.shift_floor).then_some(s);
        }
    }

    /// Active density-mixing factor α, if stage 2 has fired and not yet
    /// decayed away.
    pub fn damping(&self) -> Option<f64> {
        self.damping
    }

    /// Active virtual-block shift σ, if stage 3 has fired and not yet
    /// decayed away.
    pub fn shift(&self) -> Option<f64> {
        self.shift
    }

    /// Whether stage 4 has fired: the driver must use the FP64-reference
    /// schedule and full rebuilds from now on.
    pub fn quant_backoff(&self) -> bool {
        self.backoff
    }

    /// Current ladder level (0 = never fired).
    pub fn level(&self) -> usize {
        self.level
    }

    /// The ledger so far.
    pub fn ledger(&self) -> &RescueLedger {
        &self.ledger
    }

    /// Consume the engine, yielding the final ledger.
    pub fn into_ledger(self) -> RescueLedger {
        self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RescueConfig {
        RescueConfig::default()
    }

    #[test]
    fn converging_trajectory_is_healthy() {
        let c = cfg();
        let mut e = Vec::new();
        let mut r = Vec::new();
        let mut energy = -70.0;
        let mut res = 1.0;
        for _ in 0..30 {
            e.push(energy);
            r.push(res);
            assert_eq!(classify(&e, &r, &c, 1e-7), TrajectoryClass::Healthy);
            energy -= 0.5 * res;
            res *= 0.6;
        }
    }

    #[test]
    fn residual_growth_classifies_diverging() {
        let c = cfg();
        let mut e = Vec::new();
        let mut r = Vec::new();
        let mut res = 1e-2;
        let mut fired = false;
        for i in 0..10 {
            e.push(-70.0 - i as f64 * 1e-3);
            r.push(res);
            res *= 2.0;
            if classify(&e, &r, &c, 1e-7) == TrajectoryClass::Diverging {
                fired = true;
                break;
            }
        }
        assert!(fired, "sustained residual growth must classify diverging");
    }

    #[test]
    fn energy_alternation_classifies_oscillating() {
        let c = cfg();
        let mut e = Vec::new();
        let mut r = Vec::new();
        let mut fired = false;
        for i in 0..12 {
            e.push(-70.0 + if i % 2 == 0 { 0.3 } else { -0.3 });
            r.push(0.5);
            let class = classify(&e, &r, &c, 1e-7);
            if class != TrajectoryClass::Healthy {
                assert!(
                    matches!(class, TrajectoryClass::Oscillating | TrajectoryClass::Stagnating),
                    "{class:?}"
                );
                fired = true;
                break;
            }
        }
        assert!(fired, "constant-amplitude alternation must fire");
    }

    #[test]
    fn flat_residual_classifies_stagnating() {
        let c = cfg();
        // Strictly decreasing energy but a residual frozen far from the
        // bar: no oscillation, no divergence — stagnation.
        let e: Vec<f64> = (0..10).map(|i| -70.0 - i as f64 * 1e-9).collect();
        let r = vec![0.3; 10];
        assert_eq!(classify(&e, &r, &c, 1e-7), TrajectoryClass::Stagnating);
    }

    #[test]
    fn non_finite_is_flagged_immediately() {
        let c = cfg();
        assert_eq!(
            classify(&[-70.0, f64::NAN], &[0.1, 0.1], &c, 1e-7),
            TrajectoryClass::NonFinite
        );
        assert_eq!(
            classify(&[-70.0, -70.1], &[0.1, f64::INFINITY], &c, 1e-7),
            TrajectoryClass::NonFinite
        );
    }

    #[test]
    fn near_convergence_wobble_is_healthy() {
        let c = cfg();
        // Residual below √e_tol: endgame noise, never an anomaly.
        let e = vec![-70.0; 8];
        let r = vec![1e-5; 8];
        assert_eq!(classify(&e, &r, &c, 1e-7), TrajectoryClass::Healthy);
    }

    #[test]
    fn ladder_escalates_in_order_with_grace() {
        let mut st = RescueState::new(cfg(), 1e-7);
        let mut stages = Vec::new();
        // Feed a persistent anomaly; grace = 2 means two skipped firings
        // between stages.
        for i in 0..20 {
            if let Some(s) = st.escalate(i, TrajectoryClass::Oscillating) {
                stages.push(s);
            }
        }
        // No snapshot was ever offered, so rollback is unavailable.
        assert_eq!(
            stages,
            vec![
                RescueStage::DiisReset,
                RescueStage::Damp,
                RescueStage::LevelShift,
                RescueStage::QuantBackoff,
            ]
        );
        assert_eq!(st.ledger().len(), 4);
        assert!(st.quant_backoff());
        assert!(st.damping().is_some() || st.shift().is_some());
    }

    #[test]
    fn healthy_observations_never_arm_anything() {
        let mut st = RescueState::new(cfg(), 1e-7);
        let mut res = 1.0;
        for i in 0..20 {
            let class = st.observe(-70.0 - i as f64, res);
            assert_eq!(class, TrajectoryClass::Healthy);
            assert_eq!(st.escalate(i, class), None);
            res *= 0.5;
        }
        assert!(st.ledger().is_empty());
        assert_eq!(st.level(), 0);
        assert!(st.damping().is_none() && st.shift().is_none() && !st.quant_backoff());
    }

    #[test]
    fn damping_and_shift_decay_to_off() {
        let c = cfg();
        let mut st = RescueState::new(c.clone(), 1e-7);
        st.escalate(0, TrajectoryClass::Oscillating); // DiisReset
        for i in 1..10 {
            st.escalate(i, TrajectoryClass::Oscillating);
        }
        assert!(st.damping().is_some() && st.shift().is_some());
        for _ in 0..200 {
            st.decay();
        }
        assert!(st.damping().is_none(), "α must decay below the floor");
        assert!(st.shift().is_none(), "σ must decay below the floor");
    }

    #[test]
    fn non_finite_containment_requires_a_snapshot() {
        let mut st = RescueState::new(cfg(), 1e-7);
        assert!(!st.contain_non_finite(3), "no snapshot yet → must fail");
        st.note_healthy(0.5, sample_checkpoint);
        assert!(st.contain_non_finite(4));
        assert!(!st.contain_non_finite(5), "rollback is single-use");
        assert_eq!(st.ledger().stage_sequence(), vec![RescueStage::Rollback]);
        assert_eq!(st.ledger().events()[0].classification, TrajectoryClass::NonFinite);
        assert!(st.quant_backoff() && st.damping().is_some());
    }

    #[test]
    fn best_residual_snapshot_wins() {
        let mut st = RescueState::new(cfg(), 1e-7);
        st.note_healthy(0.5, || {
            let mut ck = sample_checkpoint();
            ck.next_iteration = 1;
            ck
        });
        st.note_healthy(0.1, || {
            let mut ck = sample_checkpoint();
            ck.next_iteration = 2;
            ck
        });
        // Worse residual: closure must not even run.
        st.note_healthy(0.4, || panic!("worse snapshot must not be captured"));
        assert_eq!(st.rollback_checkpoint().unwrap().next_iteration, 2);
    }

    #[test]
    fn ledger_summary_reads_well() {
        let mut st = RescueState::new(cfg(), 1e-7);
        st.escalate(7, TrajectoryClass::Diverging);
        let s = st.ledger().summary();
        assert!(s.contains("iter 7"), "{s}");
        assert!(s.contains("diverging→diis_reset"), "{s}");
    }

    fn sample_checkpoint() -> ScfCheckpoint {
        use mako_linalg::Matrix;
        ScfCheckpoint {
            nao: 2,
            n_batches: 0,
            n_quartets: 0,
            problem_hash: 0,
            next_iteration: 1,
            density: Matrix::identity(2),
            e_prev: -1.0,
            energy: -1.0,
            residual: 0.5,
            residual_prev: 0.6,
            was_quantized_phase: false,
            j_acc: Matrix::zeros(2, 2),
            k_acc: Matrix::zeros(2, 2),
            d_ref: Matrix::zeros(2, 2),
            since_rebuild: 0,
            drift_bound: 0.0,
            force_rebuild: false,
            diis: crate::diis::Diis::new(2).snapshot(),
            orbital_energies: vec![-0.5, 0.5],
            iteration_seconds: vec![0.1],
            stats: Default::default(),
            ledgers: Vec::new(),
            recoveries: Vec::new(),
        }
    }
}
