//! Restricted Hartree–Fock and restricted Kohn–Sham (DFT) drivers.
//!
//! The driver executes the paper's three-stage DFT workflow per iteration —
//! ERI/Fock build on the (simulated) accelerator, exchange-correlation
//! quadrature assembled as MatMuls, dense diagonalization — and reports the
//! paper's metrics: total energy, average SCF-iteration *device* time
//! excluding the first iteration (Figure 8's metric), and scheduling
//! statistics.

use crate::checkpoint::ScfCheckpoint;
use crate::diis::Diis;
use crate::error::{NonFiniteStage, ScfError};
use crate::fock::{
    attribute_non_finite, build_jk_with_configs, FockBuildStats, FockEngineOptions, JkMatrices,
};
use crate::grid::MolecularGrid;
use crate::parallel::{build_jk_distributed_ft, FaultToleranceOptions};
use crate::rescue::{RescueConfig, RescueLedger, RescueStage, RescueState, TrajectoryClass};
use crate::xc::{evaluate_aos, evaluate_xc, hartree_fock, AoOnGrid, XcFunctional};
use mako_accel::cluster::ClusterSpec;
use mako_accel::fault::{FaultPlan, RecoveryLedger};
use mako_accel::{CostModel, DeviceClock, DeviceSpec, IterationLedger};
use mako_chem::{AoLayout, BasisSet, Molecule, Shell};
use mako_compiler::KernelCache;
use mako_eri::batch::{batch_quartets, QuartetBatch};
use mako_eri::one_electron::one_electron_matrices;
use mako_eri::screening::{build_screened_pairs, ScreenedPair};
use mako_kernels::pipeline::PipelineConfig;
use mako_linalg::{eigh, gemm, sym_inv_sqrt_diag, LinalgError, Matrix, Transpose};
use mako_precision::Precision;
use mako_quant::QuantSchedule;
use std::path::PathBuf;

/// Electronic-structure method.
#[derive(Debug, Clone)]
pub enum ScfMethod {
    /// Restricted Hartree–Fock.
    Rhf,
    /// Restricted Kohn–Sham with the given functional (typically B3LYP).
    Rks(XcFunctional),
}

/// Policy knobs of the incremental (direct) SCF engine: when to trust the
/// accumulated Fock matrix and when to rebuild it from scratch.
#[derive(Debug, Clone)]
pub struct IncrementalPolicy {
    /// ΔD Schwarz screen threshold τ: quartets with
    /// `Q_ab·Q_cd·max|ΔD_block| < τ` are skipped. As the SCF converges
    /// max|ΔD| falls, so ever more quartets drop below the fixed bar.
    pub tau: f64,
    /// Full rebuild every this many iterations (numerical hygiene);
    /// `0` disables the periodic rebuild.
    pub rebuild_period: usize,
    /// Drift cap: rebuild as soon as the accumulated analytic bound on the
    /// skipped contributions (`Σ skipped_bound` since the last rebuild)
    /// exceeds this, so screening error can never pile up past it. The
    /// bound is extremely conservative (worst case over all 8 arrangements
    /// of every skipped quartet; the realized error is orders of magnitude
    /// smaller), so the cap is a loose guardrail — `rebuild_period` is the
    /// primary hygiene. Caps near the energy tolerance would force a
    /// rebuild every iteration and disable the engine entirely.
    pub drift_cap: f64,
    /// Divergence guard: when the DIIS residual grows by more than this
    /// factor between iterations, restart DIIS and force a full rebuild.
    pub divergence_factor: f64,
}

impl Default for IncrementalPolicy {
    fn default() -> IncrementalPolicy {
        IncrementalPolicy {
            tau: 1e-11,
            rebuild_period: 8,
            drift_cap: 1e-4,
            divergence_factor: 10.0,
        }
    }
}

/// Distributed execution of the per-iteration Fock build: the work is
/// LPT-partitioned over simulated GPU ranks and recovered under an optional
/// fault plan (see [`build_jk_distributed_ft`]).
#[derive(Debug, Clone)]
pub struct DistributedScf {
    /// Simulated GPU ranks (worker threads).
    pub ranks: usize,
    /// Fault schedule to inject and recover from; `None` runs a quiet
    /// cluster (still through the fault-tolerant driver, which then must
    /// behave exactly like the fault-free one).
    pub fault_plan: Option<FaultPlan>,
    /// Cluster geometry for the per-iteration allreduce accounting.
    pub cluster: Option<ClusterSpec>,
    /// Straggler-detector bar (see
    /// [`FaultToleranceOptions::straggler_threshold`]).
    pub straggler_threshold: f64,
}

impl DistributedScf {
    /// Quiet distributed run over `ranks` ranks.
    pub fn new(ranks: usize) -> DistributedScf {
        DistributedScf {
            ranks,
            fault_plan: None,
            cluster: None,
            straggler_threshold: 1.5,
        }
    }
}

/// When and where the driver writes checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Save after every `every` completed iterations (0 disables saving).
    pub every: usize,
    /// Checkpoint file path (overwritten atomically on each save).
    pub path: PathBuf,
    /// Storage backend the saves go through. `None` = the real filesystem;
    /// the durability harness injects its seeded fault backend here so
    /// every checkpoint write becomes an enumerable crash point.
    pub vfs: Option<std::sync::Arc<dyn mako_store::Vfs>>,
}

impl CheckpointPolicy {
    /// Save every `every` iterations to `path` on the real filesystem.
    pub fn new(every: usize, path: PathBuf) -> CheckpointPolicy {
        CheckpointPolicy { every, path, vfs: None }
    }

    /// Route saves through an explicit storage backend.
    pub fn via(mut self, vfs: std::sync::Arc<dyn mako_store::Vfs>) -> CheckpointPolicy {
        self.vfs = Some(vfs);
        self
    }
}

/// Per-run options of [`ScfDriver::run_with`]: checkpointing, resumption,
/// and the chaos harness's deliberate mid-trajectory kill.
#[derive(Debug, Clone, Default)]
pub struct ScfRunOptions {
    /// Periodic checkpointing policy.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Resume from this checkpoint instead of the core-Hamiltonian guess.
    /// The checkpoint's fingerprint must match this driver's problem.
    pub resume: Option<ScfCheckpoint>,
    /// Abort with [`ScfError::Killed`] after this many completed iterations
    /// (counted from iteration 0 of the *original* trajectory, so a resumed
    /// run can be killed again later). Checkpoints due on the final
    /// iteration are written before the kill fires.
    pub kill_after: Option<usize>,
    /// Chaos harness: overwrite `J[(0,0)]` with NaN right after the Fock
    /// build of this iteration, exercising the non-finite containment path
    /// exactly as a poisoned kernel would.
    pub poison_fock: Option<usize>,
}

/// SCF configuration.
#[derive(Debug, Clone)]
pub struct ScfConfig {
    /// Method (RHF or RKS).
    pub method: ScfMethod,
    /// Energy convergence threshold (the paper uses 1e-7).
    pub e_tol: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Enable QuantMako (quantized kernels with convergence-aware
    /// scheduling); `false` = pure FP64 reference.
    pub quantized: bool,
    /// Shell-pair / quartet Schwarz screening threshold.
    pub screening: f64,
    /// Optional override of the quartet-level batching threshold (the bar
    /// on `Q_ab·Q_cd` a pair-of-pairs must clear to enter a batch);
    /// `None` keeps the default `screening²`. Benchmarks on large systems
    /// raise it to bound the workload deterministically.
    pub quartet_threshold: Option<f64>,
    /// Incremental (direct) SCF: each iteration builds J/K from the density
    /// *difference* ΔD = D − D_ref under the dynamic ΔD Schwarz screen and
    /// accumulates onto the retained Fock contribution, with full rebuilds
    /// governed by [`IncrementalPolicy`]. As the SCF converges ΔD shrinks,
    /// so quartet work falls iteration over iteration — the classic
    /// direct-SCF optimization, compounding with QuantMako's scheduling.
    pub incremental: bool,
    /// Rebuild/screen policy of the incremental engine (ignored unless
    /// `incremental`).
    pub incremental_policy: IncrementalPolicy,
    /// DFT grid fineness (radial shells, θ points).
    pub grid: (usize, usize),
    /// Simulated device to run on.
    pub device: DeviceSpec,
    /// Distributed Fock execution (multi-rank, fault-tolerant); `None`
    /// builds on the single simulated device.
    pub distributed: Option<DistributedScf>,
    /// Self-healing watchdog + staged rescue ladder (see [`crate::rescue`]);
    /// `None` disables it. Enabled-but-idle is bitwise identical to
    /// disabled — the inertness contract pinned by the golden suite.
    pub rescue: Option<RescueConfig>,
    /// Canonical-orthogonalization threshold: overlap eigenvectors with
    /// eigenvalue at or below this are projected out (linear-dependence
    /// guard); the count surfaces in [`ScfResult::orth`].
    pub orth_threshold: f64,
}

impl Default for ScfConfig {
    fn default() -> ScfConfig {
        ScfConfig {
            method: ScfMethod::Rhf,
            e_tol: 1e-7,
            max_iterations: 100,
            quantized: false,
            screening: 1e-10,
            quartet_threshold: None,
            incremental: false,
            incremental_policy: IncrementalPolicy::default(),
            grid: (30, 10),
            device: DeviceSpec::a100(),
            distributed: None,
            rescue: None,
            orth_threshold: 1e-10,
        }
    }
}

/// Linear-dependence diagnostics of the canonical orthogonalization: how
/// much of the AO basis survived the overlap-eigenvalue threshold.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OrthDiagnostics {
    /// Overlap eigenvectors projected out (eigenvalue ≤ threshold).
    pub n_dropped: usize,
    /// Smallest retained overlap eigenvalue — conditioning of the surviving
    /// basis (`+∞` when everything was dropped).
    pub smallest_kept: f64,
    /// The threshold that was applied ([`ScfConfig::orth_threshold`]).
    pub threshold: f64,
}

/// Converged (or not) SCF outcome.
#[derive(Debug, Clone)]
pub struct ScfResult {
    /// Total energy (electronic + nuclear), Hartree.
    pub energy: f64,
    /// Nuclear repulsion part.
    pub e_nuclear: f64,
    /// Whether |ΔE| fell below tolerance within the iteration budget.
    pub converged: bool,
    /// Iterations executed.
    pub iterations: usize,
    /// Orbital energies (ascending).
    pub orbital_energies: Vec<f64>,
    /// Final density matrix (D = Σ_occ C Cᵀ).
    pub density: Matrix,
    /// Simulated device seconds per iteration.
    pub iteration_seconds: Vec<f64>,
    /// Average iteration device time excluding the first iteration —
    /// Figure 8's reported metric.
    pub avg_iteration_seconds: f64,
    /// Total simulated device seconds.
    pub total_seconds: f64,
    /// Accumulated Fock-build statistics.
    pub stats: FockBuildStats,
    /// Per-iteration device-clock ledger: simulated seconds charged next to
    /// the evaluated / skipped / pruned quartet populations and the rebuild
    /// flags of the incremental engine.
    pub clock: DeviceClock,
    /// Every rescue-ladder intervention of the run, oldest first. Empty on
    /// a healthy run (and then the run is bitwise identical to one with
    /// rescue disabled).
    pub rescue: RescueLedger,
    /// Linear-dependence diagnostics of the orthogonalizer.
    pub orth: OrthDiagnostics,
}

/// The SCF driver: owns the basis instantiation, screened pairs, quartet
/// batches, tuned kernel configurations, and (for DFT) the grid.
pub struct ScfDriver {
    pub(crate) mol: Molecule,
    pub(crate) shells: Vec<Shell>,
    pub(crate) layout: AoLayout,
    pub(crate) pairs: Vec<ScreenedPair>,
    pub(crate) batches: Vec<QuartetBatch>,
    pub(crate) model: CostModel,
    pub(crate) config: ScfConfig,
    pub(crate) fp64_cfgs: Vec<PipelineConfig>,
    pub(crate) quant_cfgs: Vec<PipelineConfig>,
    pub(crate) problem_hash: u64,
    grid: Option<MolecularGrid>,
    aos: Option<AoOnGrid>,
}

impl ScfDriver {
    /// Prepare a driver: instantiate the basis, screen pairs, batch
    /// quartets, tune kernels (via the CompilerMako cache), and build the
    /// DFT grid when needed. Panics when the basis does not cover the
    /// molecule — the convenience constructor for tests and benches;
    /// library paths (e.g. `MakoEngine::run_*`) use [`Self::try_new`].
    pub fn new(mol: &Molecule, basis: &BasisSet, config: ScfConfig) -> ScfDriver {
        ScfDriver::try_new(mol, basis, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: returns [`ScfError::Basis`] instead of
    /// panicking when the basis set lacks an element of the molecule.
    pub fn try_new(mol: &Molecule, basis: &BasisSet, config: ScfConfig) -> Result<ScfDriver, ScfError> {
        ScfDriver::try_new_with_cache(mol, basis, config, &KernelCache::new())
    }

    /// [`Self::try_new`] against a caller-owned kernel cache. Drivers built
    /// through the same cache share tuner sweeps: each `(ERI class,
    /// precision, device)` key is swept once for the whole fleet instead of
    /// once per molecule. `tune_class` is deterministic, so a shared-cache
    /// driver is configured identically to a fresh-cache one — only the
    /// tuning *wall time* is amortized. This is how the ensemble driver
    /// builds its members.
    pub fn try_new_with_cache(
        mol: &Molecule,
        basis: &BasisSet,
        config: ScfConfig,
        cache: &KernelCache,
    ) -> Result<ScfDriver, ScfError> {
        ScfDriver::try_new_with_artifacts(mol, basis, config, cache, None)
    }

    /// [`Self::try_new_with_cache`] with an optional injection of the
    /// screened shell-pair list. Screening is a pure function of the shells
    /// and the threshold, so a server that has already screened an identical
    /// problem (same molecule fingerprint, basis, device) can hand the pair
    /// list back instead of recomputing it — the driver it yields is
    /// indistinguishable from a fresh one. Callers are responsible for the
    /// key discipline; `mako-server`'s artifact cache keys by the problem
    /// fingerprint, which pins every input of `build_screened_pairs`.
    pub fn try_new_with_artifacts(
        mol: &Molecule,
        basis: &BasisSet,
        config: ScfConfig,
        cache: &KernelCache,
        pairs_override: Option<Vec<ScreenedPair>>,
    ) -> Result<ScfDriver, ScfError> {
        let shells = basis.try_shells_for(mol)?;
        let layout = AoLayout::new(&shells);
        let pairs = match pairs_override {
            Some(p) => p,
            None => build_screened_pairs(&shells, config.screening),
        };
        let quartet_threshold = config
            .quartet_threshold
            .unwrap_or(config.screening * config.screening);
        let batches = batch_quartets(&pairs, quartet_threshold);
        let model = CostModel::new(config.device.clone());

        // Architecture-tuned configuration per ERI class and precision.
        let fp64_cfgs: Vec<PipelineConfig> = batches
            .iter()
            .map(|b| cache.get_or_tune(&b.class, Precision::Fp64, &model).config)
            .collect();
        let quant_cfgs: Vec<PipelineConfig> = batches
            .iter()
            .map(|b| cache.get_or_tune(&b.class, Precision::Fp16, &model).config)
            .collect();

        let (grid, aos) = match &config.method {
            ScfMethod::Rks(_) => {
                let g = MolecularGrid::build(mol, config.grid.0, config.grid.1);
                let a = evaluate_aos(&shells, &g);
                (Some(g), Some(a))
            }
            ScfMethod::Rhf => (None, None),
        };

        let problem_hash = problem_hash(mol, &shells, &config);
        Ok(ScfDriver {
            mol: mol.clone(),
            shells,
            layout,
            pairs,
            batches,
            model,
            config,
            fp64_cfgs,
            quant_cfgs,
            problem_hash,
            grid,
            aos,
        })
    }

    /// Number of spherical AOs.
    pub fn nao(&self) -> usize {
        self.layout.nao
    }

    /// Number of surviving quartet batches (ERI classes).
    pub fn nbatches(&self) -> usize {
        self.batches.len()
    }

    /// Total quartets across all batches — the per-iteration workload of a
    /// full (non-incremental) build before any dynamic screening.
    pub fn nquartets(&self) -> usize {
        self.batches.iter().map(|b| b.quartets.len()).sum()
    }

    /// Content hash of the problem this driver solves: molecule geometry,
    /// contracted shells, device kind, method, quantization/incremental
    /// mode, and screening thresholds. Drivers for *different* problems that
    /// happen to share all the gross sizes (nao, batch count, quartet count)
    /// still get distinct fingerprints, which is the key both for checkpoint
    /// cross-tenant validation and for `mako-server`'s screening-artifact
    /// cache. Convergence *budget* knobs (`e_tol`, `max_iterations`) are
    /// deliberately excluded: resuming the same problem with a tighter
    /// tolerance or a larger iteration budget is legitimate.
    pub fn problem_fingerprint(&self) -> u64 {
        self.problem_hash
    }

    /// The screened shell-pair list (with Schwarz bounds) this driver was
    /// built on — the reusable artifact for
    /// [`Self::try_new_with_artifacts`].
    pub fn screened_pairs(&self) -> &[ScreenedPair] {
        &self.pairs
    }

    /// Run the SCF to convergence (no checkpointing, no resumption).
    pub fn run(&self) -> Result<ScfResult, ScfError> {
        self.run_with(ScfRunOptions::default())
    }

    /// Run the SCF with explicit run options: periodic checkpointing,
    /// resumption from a saved checkpoint, and the chaos harness's
    /// deliberate kill.
    ///
    /// A resumed run replays the remaining trajectory **bitwise
    /// identically** to the uninterrupted one: the checkpoint carries every
    /// piece of inter-iteration state (density, DIIS history, incremental
    /// accumulators, residual bookkeeping, ledgers), all serialized through
    /// `f64::to_bits`.
    pub fn run_with(&self, run_opts: ScfRunOptions) -> Result<ScfResult, ScfError> {
        let mut session = ScfSession::new(self, run_opts)?;
        while session.active() {
            let prep = session.prepare();
            let (jk, st, recovery) = self.execute_build(&prep, session.iteration())?;
            session.advance(prep, jk, st, recovery)?;
        }
        Ok(session.finish())
    }

    /// Execute one prepared Fock build on this driver's execution path:
    /// single simulated device, or the fault-tolerant multi-rank cluster.
    /// The ensemble driver substitutes its own execution (cross-molecule
    /// fused launches) for this call — everything else of the iteration is
    /// the session's, shared verbatim.
    fn execute_build(
        &self,
        prep: &PreparedIteration,
        iter: usize,
    ) -> Result<(JkMatrices, FockBuildStats, RecoveryLedger), ScfError> {
        let nao = self.layout.nao;
        match &self.config.distributed {
            Some(dist) => {
                // Fault-tolerant multi-rank build. The plan's fault
                // stream is shared across iterations; the collective
                // call index keys each iteration's allreduce timeouts.
                let plan = dist
                    .fault_plan
                    .clone()
                    .unwrap_or_else(|| FaultPlan::quiet(dist.ranks));
                let ft = FaultToleranceOptions {
                    plan,
                    straggler_threshold: dist.straggler_threshold,
                    cluster: dist.cluster.clone(),
                    allreduce_bytes: 2.0 * (nao * nao) as f64 * 8.0,
                    collective_call: iter as u64,
                };
                let out = build_jk_distributed_ft(
                    &prep.build_density,
                    &self.pairs,
                    &self.batches,
                    &self.layout,
                    &prep.schedule,
                    &|bi| (self.fp64_cfgs[bi], self.quant_cfgs[bi]),
                    &self.model,
                    dist.ranks,
                    prep.opts,
                    &ft,
                )?;
                Ok((out.jk, out.stats, out.recovery))
            }
            None => {
                let (jk, st) = build_jk_with_configs(
                    &prep.build_density,
                    &self.pairs,
                    &self.batches,
                    &self.layout,
                    &prep.schedule,
                    |bi| (self.fp64_cfgs[bi], self.quant_cfgs[bi]),
                    &self.model,
                    prep.opts,
                );
                Ok((jk, st, RecoveryLedger::default()))
            }
        }
    }

    /// Simulated device time of the XC quadrature: three `npts × nao × nao`
    /// GEMMs (FP64 tensor pipes) plus grid-local functional evaluation.
    fn xc_device_seconds(&self, npts: usize) -> f64 {
        let nao = self.layout.nao as f64;
        let gemm_flops = 3.0 * 2.0 * npts as f64 * nao * nao;
        let local_flops = 200.0 * npts as f64;
        let bytes = (npts as f64 * nao * 8.0) * 2.0;
        let mut p = mako_accel::KernelProfile::named("xc_quadrature");
        p.tensor_flops.push((Precision::Fp64, gemm_flops));
        p.cuda_flops.push((Precision::Fp64, local_flops));
        p.global_read = bytes;
        p.global_write = bytes * 0.1;
        p.smem_per_block = 32 * 1024;
        self.model.evaluate(&p).total_s
    }

    /// Simulated device time of the dense diagonalization — the replicated
    /// serial stage of the distributed runs. Eigensolvers reach only a
    /// small fraction of peak.
    fn diag_device_seconds(&self) -> f64 {
        let n = self.layout.nao as f64;
        let flops = 9.0 * n * n * n;
        flops / (0.05 * self.model.device.cuda_peak(Precision::Fp64)) + 50.0e-6
    }
}

/// The Fock-build inputs of one SCF iteration, produced by
/// [`ScfSession::prepare`] and consumed back by [`ScfSession::advance`] after
/// an execution path has run the build. Between the two calls the caller owns
/// the execution: the solo driver calls [`ScfDriver::execute_build`], the
/// ensemble driver fuses same-class sub-batches across molecules into shared
/// launches. `prepare` has already committed every schedule- and
/// rebuild-policy decision, so execution cannot influence the trajectory —
/// only how the work is priced.
pub(crate) struct PreparedIteration {
    /// Precision schedule for this iteration (per-molecule decision).
    pub(crate) schedule: QuantSchedule,
    /// Whether this is a full rebuild (accumulators purged) or an
    /// incremental ΔD build.
    pub(crate) rebuild: bool,
    /// The density handed to the engine: ΔD on the incremental path, D
    /// otherwise.
    pub(crate) build_density: Matrix,
    /// Engine options (ΔD screen threshold on the incremental path).
    pub(crate) opts: FockEngineOptions,
    /// The open `scf.iteration` span; `advance` fills its fields and ends it.
    iter_span: mako_trace::Span,
}

/// One molecule's SCF trajectory as an explicit state machine.
///
/// This is `run_with`'s former loop body with the loop inverted out: `new`
/// is everything before the first iteration, then `prepare → (execute) →
/// advance` is one iteration, and `finish` is everything after the loop.
/// The solo driver ([`ScfDriver::run_with`]) and the ensemble driver step
/// the *same* session code, which is what makes batched-vs-solo per-molecule
/// bitwise identity hold by construction rather than by parallel maintenance
/// of two loops.
///
/// All numeric state (density, DIIS history, rescue ladder, incremental
/// accumulators, watchdog) lives here, one instance per molecule; nothing in
/// a session is shared, so a diverging ensemble member cannot perturb its
/// neighbors.
pub(crate) struct ScfSession<'a> {
    driver: &'a ScfDriver,
    run_opts: ScfRunOptions,
    n_occ: usize,
    functional: XcFunctional,
    h: Matrix,
    s: Matrix,
    x: Matrix,
    orth: OrthDiagnostics,
    e_nuc: f64,
    policy: IncrementalPolicy,
    // Incremental-build state: accumulated G matrices, the density they
    // correspond to, and the rebuild-policy bookkeeping.
    j_acc: Matrix,
    k_acc: Matrix,
    d_ref: Matrix,
    was_quantized_phase: bool,
    since_rebuild: usize,
    drift_bound: f64,
    force_rebuild: bool,
    residual_prev: f64,
    clock: DeviceClock,
    // Self-healing engine. `None` when disabled; when enabled it stays
    // strictly observational until a ladder stage fires, so a healthy
    // enabled run is bitwise identical to a disabled one.
    rescue: Option<RescueState>,
    diis: Diis,
    e_prev: f64,
    residual: f64,
    iteration_seconds: Vec<f64>,
    total_stats: FockBuildStats,
    converged: bool,
    energy: f64,
    orbital_energies: Vec<f64>,
    // Ledger credit (e.g. a checkpoint load) that lands on the next
    // iteration's recovery record.
    pending_recovery: RecoveryLedger,
    d: Matrix,
    iter: usize,
    finished: bool,
}

impl<'a> ScfSession<'a> {
    /// Everything before the first iteration: guess or checkpoint
    /// resumption, one-electron matrices, orthogonalizer, rescue engine.
    pub(crate) fn new(
        driver: &'a ScfDriver,
        mut run_opts: ScfRunOptions,
    ) -> Result<ScfSession<'a>, ScfError> {
        if !driver.mol.n_electrons().is_multiple_of(2) {
            return Err(ScfError::OpenShell {
                electrons: driver.mol.n_electrons(),
            });
        }
        let n_occ = driver.mol.n_electrons() / 2;
        let functional = match &driver.config.method {
            ScfMethod::Rhf => hartree_fock(),
            ScfMethod::Rks(f) => f.clone(),
        };

        let (s, t, v) = one_electron_matrices(&driver.shells, &driver.mol);
        let h = t.add(&v);
        let orth_factor = sym_inv_sqrt_diag(&s, driver.config.orth_threshold)
            .map_err(|source| ScfError::OverlapNotPositiveDefinite { source })?;
        let orth = OrthDiagnostics {
            n_dropped: orth_factor.n_dropped,
            smallest_kept: orth_factor.smallest_kept,
            threshold: driver.config.orth_threshold,
        };
        let x = orth_factor.matrix;
        {
            let mut setup = mako_trace::span("scf", "setup");
            if setup.is_recording() {
                setup.add_field("nao", driver.layout.nao);
                setup.add_field("orth_dropped", orth.n_dropped);
                if orth.smallest_kept.is_finite() {
                    setup.add_field("orth_smallest_kept", orth.smallest_kept);
                }
                setup.add_field("orth_threshold", orth.threshold);
            }
            setup.end();
        }
        let e_nuc = driver.mol.nuclear_repulsion();

        let nao = driver.layout.nao;
        let policy = driver.config.incremental_policy.clone();
        let mut j_acc = Matrix::zeros(nao, nao);
        let mut k_acc = Matrix::zeros(nao, nao);
        let mut d_ref = Matrix::zeros(nao, nao);
        let mut was_quantized_phase = false;
        let mut since_rebuild = 0usize;
        let mut drift_bound = 0.0f64;
        let mut force_rebuild = false;
        let mut residual_prev = f64::INFINITY;
        let mut clock = DeviceClock::new();

        let rescue: Option<RescueState> = driver
            .config
            .rescue
            .clone()
            .map(|cfg| RescueState::new(cfg, driver.config.e_tol));

        let mut diis = Diis::new(8);
        let mut e_prev = f64::INFINITY;
        let mut residual = 1.0f64;
        let mut iteration_seconds = Vec::new();
        let mut total_stats = FockBuildStats::default();
        let mut energy = 0.0;
        let mut orbital_energies = Vec::new();

        // Fresh start (core-Hamiltonian guess) or checkpoint resumption.
        // The resume ledger credit lands on the first new iteration.
        let mut pending_recovery = RecoveryLedger::default();
        let start_iter;
        let d;
        match run_opts.resume.take() {
            Some(ck) => {
                ck.validate(
                    nao,
                    driver.batches.len(),
                    driver.nquartets(),
                    driver.problem_hash,
                )?;
                d = ck.density;
                e_prev = ck.e_prev;
                energy = ck.energy;
                residual = ck.residual;
                residual_prev = ck.residual_prev;
                was_quantized_phase = ck.was_quantized_phase;
                j_acc = ck.j_acc;
                k_acc = ck.k_acc;
                d_ref = ck.d_ref;
                since_rebuild = ck.since_rebuild;
                drift_bound = ck.drift_bound;
                force_rebuild = ck.force_rebuild;
                diis = Diis::restore(ck.diis);
                orbital_energies = ck.orbital_energies;
                iteration_seconds = ck.iteration_seconds;
                total_stats = ck.stats;
                let mut restored = DeviceClock::new();
                for l in &ck.ledgers {
                    restored.push(*l);
                }
                for r in &ck.recoveries {
                    restored.push_recovery(*r);
                }
                clock = restored;
                start_iter = ck.next_iteration;
                pending_recovery.checkpoint_loads = 1;
            }
            None => {
                d = density_from_fock(&h, &x, n_occ)
                    .map_err(|source| ScfError::Diagonalization { iteration: 0, source })?
                    .0;
                start_iter = 0;
            }
        }

        Ok(ScfSession {
            driver,
            run_opts,
            n_occ,
            functional,
            h,
            s,
            x,
            orth,
            e_nuc,
            policy,
            j_acc,
            k_acc,
            d_ref,
            was_quantized_phase,
            since_rebuild,
            drift_bound,
            force_rebuild,
            residual_prev,
            clock,
            rescue,
            diis,
            e_prev,
            residual,
            iteration_seconds,
            total_stats,
            converged: false,
            energy,
            orbital_energies,
            pending_recovery,
            d,
            iter: start_iter,
            finished: false,
        })
    }

    /// True while the trajectory has iterations left to run: not yet
    /// converged (or failed), and under the iteration cap.
    pub(crate) fn active(&self) -> bool {
        !self.finished && self.iter < self.driver.config.max_iterations
    }

    /// The iteration `prepare` will stage next.
    pub(crate) fn iteration(&self) -> usize {
        self.iter
    }

    /// Latest total energy (Ha). Trace/diagnostic use only.
    pub(crate) fn energy(&self) -> f64 {
        self.energy
    }

    /// Latest scheduling residual. Trace/diagnostic use only.
    pub(crate) fn residual(&self) -> f64 {
        self.residual
    }

    /// Stage the next iteration: commit the precision schedule and the
    /// rebuild decision, purge the incremental accumulators on a rebuild,
    /// and form the build density. Every trajectory-shaping decision is made
    /// here — the execution path that follows only prices and evaluates.
    pub(crate) fn prepare(&mut self) -> PreparedIteration {
        let iter_span = mako_trace::span("scf", "iteration");
        let cfg = &self.driver.config;
        let backoff = self.rescue.as_ref().is_some_and(|r| r.quant_backoff());
        let schedule = if backoff {
            // Stage 4 fired: pinned to the FP64 reference schedule for
            // the rest of the run.
            QuantSchedule::rescue_backoff(cfg.e_tol)
        } else if cfg.quantized {
            QuantSchedule::for_iteration(self.residual, cfg.e_tol)
        } else {
            QuantSchedule::fp64_reference(cfg.e_tol * 1e-5)
        };

        // With the incremental option, integrals contract against ΔD =
        // D − D_ref under the dynamic ΔD Schwarz screen and accumulate onto
        // the previous G. The accumulators are purged (full rebuild) when:
        //  * the run starts (iteration 0, ΔD = D),
        //  * the quantization phase ends — otherwise early low-precision
        //    error would persist in G,
        //  * `rebuild_period` incremental iterations have passed
        //    (numerical hygiene, the standard direct-SCF reset),
        //  * the accumulated analytic skip bound exceeds `drift_cap`,
        //  * the divergence guard tripped last iteration,
        //  * the convergence signal fired on a screened build and the
        //    final energy must be certified on drift-free Fock,
        //  * the rescue ladder's quantization backoff is active (the
        //    backed-off trajectory must be free of screening drift too).
        let leaving_quant_phase = self.was_quantized_phase && !schedule.allow_quantized;
        self.was_quantized_phase = schedule.allow_quantized;
        let rebuild = !cfg.incremental
            || self.iter == 0
            || leaving_quant_phase
            || self.force_rebuild
            || backoff
            || (self.policy.rebuild_period > 0 && self.since_rebuild >= self.policy.rebuild_period)
            || self.drift_bound > self.policy.drift_cap;
        if cfg.incremental && rebuild {
            let nao = self.driver.layout.nao;
            self.j_acc = Matrix::zeros(nao, nao);
            self.k_acc = Matrix::zeros(nao, nao);
            self.d_ref = Matrix::zeros(nao, nao);
            self.since_rebuild = 0;
            self.drift_bound = 0.0;
            self.force_rebuild = false;
        }
        let build_density = if cfg.incremental {
            let mut delta = self.d.clone();
            delta.axpy(-1.0, &self.d_ref);
            delta
        } else {
            self.d.clone()
        };
        // The ΔD screen (phase 0 of the engine) only engages on the
        // incremental path.
        let opts = FockEngineOptions {
            delta_tau: if cfg.incremental { Some(self.policy.tau) } else { None },
            ..FockEngineOptions::default()
        };
        PreparedIteration {
            schedule,
            rebuild,
            build_density,
            opts,
            iter_span,
        }
    }

    /// Fold one executed Fock build back into the trajectory: incremental
    /// accumulation, XC, Fock/energy assembly, DIIS, rescue knobs, the
    /// non-finite containment checkpoints, diagonalization, convergence
    /// test, watchdog, and checkpointing. Exactly `run_with`'s former loop
    /// body below the build — same operations, same order; that ordering is
    /// the bitwise-identity contract between the solo and ensemble paths.
    pub(crate) fn advance(
        &mut self,
        prep: PreparedIteration,
        jk: JkMatrices,
        st: FockBuildStats,
        mut recovery: RecoveryLedger,
    ) -> Result<(), ScfError> {
        let PreparedIteration {
            rebuild,
            build_density,
            mut iter_span,
            ..
        } = prep;
        let iter = self.iter;
        recovery.absorb(&self.pending_recovery);
        self.pending_recovery = RecoveryLedger::default();
        let (mut j, mut k) = (jk.j, jk.k);
        // Chaos harness: poison the build exactly as a broken kernel
        // would, upstream of the containment checkpoints.
        if self.run_opts.poison_fock == Some(iter) {
            j[(0, 0)] = f64::NAN;
        }
        let mut iter_seconds = st.device_seconds;

        // Non-finite containment: a NaN/Inf caught at any assembly
        // checkpoint is attributed (J/K only — the one stage with a
        // per-batch structure to blame), traced, and — when the rescue
        // engine holds an unspent good snapshot — contained by rolling
        // back; otherwise the run fails with the typed error instead of
        // iterating on garbage.
        macro_rules! contain {
            ($stage:expr) => {{
                let stage = $stage;
                let site = match stage {
                    NonFiniteStage::Coulomb | NonFiniteStage::Exchange => Some(
                        attribute_non_finite(
                            &build_density,
                            &self.driver.pairs,
                            &self.driver.batches,
                        ),
                    ),
                    _ => None,
                };
                let contained = self
                    .rescue
                    .as_mut()
                    .is_some_and(|r| r.contain_non_finite(iter));
                if mako_trace::enabled() {
                    let mut fields = vec![
                        mako_trace::field("iter", iter),
                        mako_trace::field("stage", stage.label()),
                        mako_trace::field("contained", contained),
                    ];
                    if let Some(site) = &site {
                        fields.push(mako_trace::field(
                            "density_poisoned",
                            site.density_poisoned,
                        ));
                        if let Some(b) = site.batch {
                            fields.push(mako_trace::field("batch", b));
                        }
                        if let Some(c) = &site.class {
                            fields.push(mako_trace::field("class", c.clone()));
                        }
                    }
                    mako_trace::instant("scf", "non_finite", fields);
                }
                // The poisoned work was still spent: account for it
                // before unwinding the iteration.
                self.iteration_seconds.push(iter_seconds);
                self.clock.push(IterationLedger {
                    eri_seconds: st.device_seconds,
                    total_seconds: iter_seconds,
                    evaluated_quartets: st.evaluated_quartets(),
                    skipped_quartets: st.skipped_quartets,
                    pruned_quartets: st.pruned_quartets,
                    skipped_bound: st.skipped_bound,
                    rebuild,
                });
                self.clock.push_recovery(recovery);
                iter_span.end();
                if contained {
                    let level = self
                        .rescue
                        .as_ref()
                        .expect("contained implies rescue")
                        .level();
                    emit_rescue_span(
                        iter,
                        TrajectoryClass::NonFinite,
                        RescueStage::Rollback,
                        0.0,
                        level,
                    );
                    self.restore_rollback();
                    self.iter += 1;
                    return Ok(());
                }
                return Err(ScfError::NonFinite { iteration: iter, stage });
            }};
        }
        self.total_stats.fp64_quartets += st.fp64_quartets;
        self.total_stats.quantized_quartets += st.quantized_quartets;
        self.total_stats.pruned_quartets += st.pruned_quartets;
        self.total_stats.skipped_quartets += st.skipped_quartets;
        self.total_stats.skipped_bound += st.skipped_bound;
        if self.driver.config.incremental {
            self.j_acc.axpy(1.0, &j);
            self.k_acc.axpy(1.0, &k);
            j = self.j_acc.clone();
            k = self.k_acc.clone();
            self.d_ref = self.d.clone();
            self.since_rebuild += 1;
            self.drift_bound += st.skipped_bound;
        }
        if !j.all_finite() {
            contain!(NonFiniteStage::Coulomb);
        }
        if !k.all_finite() {
            contain!(NonFiniteStage::Exchange);
        }

        // Exchange-correlation (DFT only).
        let (e_xc, v_xc, xc_seconds) = match (&self.driver.grid, &self.driver.aos) {
            (Some(grid), Some(aos)) => {
                let res = evaluate_xc(&self.functional, aos, grid, &self.d);
                let secs = self.driver.xc_device_seconds(grid.len());
                (res.energy, Some(res.matrix), secs)
            }
            _ => (0.0, None, 0.0),
        };
        iter_seconds += xc_seconds;

        // Fock matrix: F = H + 2J − a·K (+ V_xc).
        let mut f = self.h.clone();
        f.axpy(2.0, &j);
        f.axpy(-self.functional.hf_exchange, &k);
        if let Some(vxc) = &v_xc {
            f.axpy(1.0, vxc);
        }

        // Energy.
        let e_elec = 2.0 * self.d.dot(&self.h) + 2.0 * self.d.dot(&j)
            - self.functional.hf_exchange * self.d.dot(&k)
            + e_xc;
        self.energy = e_elec + self.e_nuc;
        if !f.all_finite() {
            contain!(NonFiniteStage::Fock);
        }
        if !self.energy.is_finite() {
            contain!(NonFiniteStage::Energy);
        }

        // DIIS extrapolation, with the divergence guard: a residual
        // jump by `divergence_factor` means the extrapolation went bad —
        // restart DIIS (drop the stale history) and schedule a full
        // rebuild so accumulated screening drift cannot steer recovery.
        let err = Diis::error_vector(&f, &self.d, &self.s, &self.x);
        self.residual = err.norm_fro() / (self.driver.layout.nao as f64);
        // The watchdog observes the raw DIIS residual, before the
        // |ΔE|-based scheduling floor below munges it.
        let residual_diis = self.residual;
        // A rebuild iteration is exempt from the guard: removing the
        // accumulated screening drift legitimately bumps the residual
        // (the frozen phase before it drove the residual toward zero),
        // and the guard's remedy — a rebuild — is what just happened.
        // Tripping it here would force a redundant back-to-back rebuild
        // and throw away healthy DIIS history.
        let guard_exempt = self.driver.config.incremental && rebuild;
        if iter > 0
            && !guard_exempt
            && self.residual_prev.is_finite()
            && self.residual > self.policy.divergence_factor * self.residual_prev
        {
            self.diis.reset();
            self.force_rebuild = true;
        }
        self.residual_prev = self.residual;
        let mut f_diis = self.diis.extrapolate(f, err);

        // Stage 3 (level shifting): raise the virtual block of the
        // extrapolated Fock by σ. With CᵀSC = I and D = C_occ·C_occᵀ,
        // Cᵀ(S − S·D·S)C = diag(0_occ, 1_virt), so occupied orbitals
        // are untouched and every virtual rises by σ — the classic
        // gap-opening rescue. Applied after DIIS so the history keeps
        // unshifted matrices; strictly gated, so no FP operation runs
        // until the stage fires.
        if let Some(sigma) = self.rescue.as_ref().and_then(|r| r.shift()) {
            let sd = gemm(&self.s, Transpose::No, &self.d, Transpose::No);
            let sds = gemm(&sd, Transpose::No, &self.s, Transpose::No);
            let mut proj = self.s.clone();
            proj.axpy(-1.0, &sds);
            f_diis.axpy(sigma, &proj);
        }
        if !f_diis.all_finite() {
            contain!(NonFiniteStage::Fock);
        }

        // Diagonalize (replicated serial stage — costed separately).
        let (d_new, eps) = density_from_fock(&f_diis, &self.x, self.n_occ)
            .map_err(|source| ScfError::Diagonalization { iteration: iter, source })?;
        iter_seconds += self.driver.diag_device_seconds();
        if !d_new.all_finite() {
            contain!(NonFiniteStage::Density);
        }
        self.iteration_seconds.push(iter_seconds);
        self.clock.push(IterationLedger {
            eri_seconds: st.device_seconds,
            total_seconds: iter_seconds,
            evaluated_quartets: st.evaluated_quartets(),
            skipped_quartets: st.skipped_quartets,
            pruned_quartets: st.pruned_quartets,
            skipped_bound: st.skipped_bound,
            rebuild,
        });

        let de = (self.energy - self.e_prev).abs();
        self.e_prev = self.energy;
        let d_prev = std::mem::replace(&mut self.d, d_new);
        // Stage 2 (density damping): mix the previous density back in,
        // D ← (1−α)·D_new + α·D_old. Gated — with damping off the
        // replacement above is all that happens.
        if let Some(alpha) = self.rescue.as_ref().and_then(|r| r.damping()) {
            self.d.scale_mut(1.0 - alpha);
            self.d.axpy(alpha, &d_prev);
        }
        self.orbital_energies = eps;

        if iter_span.is_recording() {
            iter_span.add_field("iter", iter);
            iter_span.add_field("energy", self.energy);
            iter_span.add_field("de", de);
            iter_span.add_field("residual", self.residual);
            iter_span.add_field("rebuild", rebuild);
            iter_span.add_field("eri_seconds", st.device_seconds);
            iter_span.add_field("total_seconds", iter_seconds);
            iter_span.add_field("evaluated_quartets", st.evaluated_quartets());
            iter_span.add_field("skipped_quartets", st.skipped_quartets);
            iter_span.add_field("pruned_quartets", st.pruned_quartets);
        }
        iter_span.end();

        let mut finishing = false;
        if de < self.driver.config.e_tol && self.residual < self.driver.config.e_tol.sqrt() {
            // Certified convergence: never accept the convergence signal
            // off a screened incremental build. Near convergence the ΔD
            // screen can skip every remaining quartet, freezing the Fock
            // pieces — |ΔE| then collapses to zero *because nothing was
            // updated*, not because the energy is right, and the run
            // would stop carrying the accumulated screening drift. Force
            // one full rebuild and only accept convergence re-confirmed
            // on rebuilt (drift-free) Fock.
            if self.driver.config.incremental && !rebuild {
                self.force_rebuild = true;
            } else {
                self.converged = true;
                // When quantized, require a final FP64-clean iteration:
                // the schedule disables quantization near convergence, so
                // one more pass confirms the energy at full precision.
                if !self.driver.config.quantized || iter > 0 {
                    finishing = true;
                }
            }
        }
        if !finishing {
            // Use |ΔE| as the scheduling residual for the next iteration.
            self.residual = self.residual.max(de.min(1.0));
        }

        // Convergence watchdog + staged rescue ladder. Strictly
        // observational until a stage fires: on a healthy trajectory no
        // floating-point value of the iteration changes (the inertness
        // contract the golden suite pins bitwise). Decay runs first —
        // this iteration already consumed the current α/σ — so a stage
        // (re)armed by `escalate` starts the next iteration at full
        // strength. The engine is taken out of `self` for the block so
        // the snapshot closure can borrow the session state freely.
        if !finishing {
            let mut rescue = self.rescue.take();
            let mut do_rollback = false;
            if let Some(r) = rescue.as_mut() {
                r.decay();
                let class = r.observe(self.energy, residual_diis);
                if class == TrajectoryClass::Healthy {
                    // Offer the current state as a rollback target; the
                    // engine keeps the best-residual one. Only the
                    // numeric fields matter to a rollback — accounting
                    // always runs forward — so those stay empty.
                    r.note_healthy(residual_diis, || ScfCheckpoint {
                        nao: self.driver.layout.nao,
                        n_batches: self.driver.batches.len(),
                        n_quartets: self.driver.nquartets(),
                        problem_hash: self.driver.problem_hash,
                        next_iteration: iter + 1,
                        density: self.d.clone(),
                        e_prev: self.e_prev,
                        energy: self.energy,
                        residual: self.residual,
                        residual_prev: self.residual_prev,
                        was_quantized_phase: self.was_quantized_phase,
                        j_acc: self.j_acc.clone(),
                        k_acc: self.k_acc.clone(),
                        d_ref: self.d_ref.clone(),
                        since_rebuild: self.since_rebuild,
                        drift_bound: self.drift_bound,
                        force_rebuild: self.force_rebuild,
                        diis: self.diis.snapshot(),
                        orbital_energies: self.orbital_energies.clone(),
                        iteration_seconds: Vec::new(),
                        stats: FockBuildStats::default(),
                        ledgers: Vec::new(),
                        recoveries: Vec::new(),
                    });
                } else if let Some(stage) = r.escalate(iter, class) {
                    let detail = r.ledger().events().last().map(|e| e.detail).unwrap_or(0.0);
                    emit_rescue_span(iter, class, stage, detail, r.level());
                    match stage {
                        RescueStage::DiisReset => {
                            self.diis.reset();
                            if self.driver.config.incremental {
                                self.force_rebuild = true;
                            }
                        }
                        // The engine already armed the knob; the driver
                        // consumes it at its fixed point next iteration.
                        RescueStage::Damp
                        | RescueStage::LevelShift
                        | RescueStage::QuantBackoff => {}
                        RescueStage::Rollback => do_rollback = true,
                    }
                }
            }
            self.rescue = rescue;
            if do_rollback {
                self.restore_rollback();
            }
        }

        // Periodic checkpoint: the state captured here is exactly what
        // iteration `iter + 1` consumes, so a resumed run replays the
        // remaining trajectory bitwise.
        let save_now = !finishing
            && self
                .run_opts
                .checkpoint
                .as_ref()
                .is_some_and(|p| p.every > 0 && (iter + 1).is_multiple_of(p.every));
        recovery.checkpoint_saves = save_now as usize;
        self.clock.push_recovery(recovery);
        if save_now {
            let p = self
                .run_opts
                .checkpoint
                .as_ref()
                .expect("save_now implies a policy");
            let ck = ScfCheckpoint {
                nao: self.driver.layout.nao,
                n_batches: self.driver.batches.len(),
                n_quartets: self.driver.nquartets(),
                problem_hash: self.driver.problem_hash,
                next_iteration: iter + 1,
                density: self.d.clone(),
                e_prev: self.e_prev,
                energy: self.energy,
                residual: self.residual,
                residual_prev: self.residual_prev,
                was_quantized_phase: self.was_quantized_phase,
                j_acc: self.j_acc.clone(),
                k_acc: self.k_acc.clone(),
                d_ref: self.d_ref.clone(),
                since_rebuild: self.since_rebuild,
                drift_bound: self.drift_bound,
                force_rebuild: self.force_rebuild,
                diis: self.diis.snapshot(),
                orbital_energies: self.orbital_energies.clone(),
                iteration_seconds: self.iteration_seconds.clone(),
                stats: self.total_stats.clone(),
                ledgers: self.clock.iterations().to_vec(),
                recoveries: self.clock.recoveries().to_vec(),
            };
            match &p.vfs {
                Some(vfs) => ck.save_via(vfs.as_ref(), &p.path),
                None => ck.save(&p.path),
            }
            .map_err(ScfError::Checkpoint)?;
        }
        if finishing {
            self.finished = true;
            return Ok(());
        }
        // The chaos harness's deliberate kill — after the checkpoint,
        // so the trajectory can be resumed from the latest save.
        if let Some(n) = self.run_opts.kill_after {
            if iter + 1 >= n {
                return Err(ScfError::Killed { iterations: iter + 1 });
            }
        }
        self.iter += 1;
        Ok(())
    }

    /// Restore the rescue engine's best-residual in-memory checkpoint:
    /// numeric state rewinds, accounting (clock, stats, iteration
    /// seconds) keeps running forward — wall time was really spent.
    /// The accumulators are purged and a full rebuild forced so no
    /// post-snapshot screening drift survives the rewind.
    fn restore_rollback(&mut self) {
        let ck = self
            .rescue
            .as_ref()
            .and_then(|r| r.rollback_checkpoint())
            .expect("rollback stage implies a snapshot")
            .clone();
        let nao = self.driver.layout.nao;
        self.d = ck.density;
        self.e_prev = ck.e_prev;
        self.energy = ck.energy;
        self.residual = ck.residual;
        self.residual_prev = ck.residual_prev;
        self.orbital_energies = ck.orbital_energies;
        self.j_acc = Matrix::zeros(nao, nao);
        self.k_acc = Matrix::zeros(nao, nao);
        self.d_ref = Matrix::zeros(nao, nao);
        self.since_rebuild = 0;
        self.drift_bound = 0.0;
        self.force_rebuild = true;
        self.was_quantized_phase = false;
        self.diis.reset();
    }

    /// Everything after the last iteration: the paper's timing metrics and
    /// the assembled [`ScfResult`].
    pub(crate) fn finish(mut self) -> ScfResult {
        let avg = if self.iteration_seconds.len() > 1 {
            self.iteration_seconds[1..].iter().sum::<f64>()
                / (self.iteration_seconds.len() - 1) as f64
        } else {
            self.iteration_seconds.first().copied().unwrap_or(0.0)
        };
        self.total_stats.device_seconds = self.iteration_seconds.iter().sum();

        ScfResult {
            energy: self.energy,
            e_nuclear: self.e_nuc,
            converged: self.converged,
            iterations: self.iteration_seconds.len(),
            orbital_energies: self.orbital_energies,
            density: self.d,
            avg_iteration_seconds: avg,
            total_seconds: self.iteration_seconds.iter().sum(),
            iteration_seconds: self.iteration_seconds,
            stats: self.total_stats,
            clock: self.clock,
            rescue: self.rescue.map(RescueState::into_ledger).unwrap_or_default(),
            orth: self.orth,
        }
    }
}

/// Content hash of the (molecule, shells, device, method, screening)
/// problem — the version-2 checkpoint fingerprint. SplitMix64 finalizer
/// folded over every input bit; `f64` values are hashed through `to_bits`
/// so the hash is as exact as the trajectory it guards.
fn problem_hash(mol: &Molecule, shells: &[Shell], config: &ScfConfig) -> u64 {
    #[inline]
    fn mix(h: u64, v: u64) -> u64 {
        let mut z = (h ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut h = 0x4D41_4B4F_5343_4646u64; // b"MAKOSCFF"
    for atom in &mol.atoms {
        h = mix(h, atom.element.z() as u64);
        for &c in &atom.position {
            h = mix(h, c.to_bits());
        }
    }
    for sh in shells {
        h = mix(h, sh.l as u64);
        h = mix(h, sh.atom as u64);
        for &c in &sh.center {
            h = mix(h, c.to_bits());
        }
        for (&e, &c) in sh.exps.iter().zip(&sh.coefs) {
            h = mix(h, e.to_bits());
            h = mix(h, c.to_bits());
        }
    }
    h = mix(h, config.device.kind as u64);
    h = mix(
        h,
        match &config.method {
            ScfMethod::Rhf => 0,
            ScfMethod::Rks(_) => 1,
        },
    );
    if let ScfMethod::Rks(f) = &config.method {
        h = mix(h, f.hf_exchange.to_bits());
        h = mix(h, config.grid.0 as u64);
        h = mix(h, config.grid.1 as u64);
    }
    h = mix(h, config.quantized as u64);
    h = mix(h, config.incremental as u64);
    h = mix(h, config.screening.to_bits());
    h = mix(
        h,
        config
            .quartet_threshold
            .unwrap_or(config.screening * config.screening)
            .to_bits(),
    );
    h
}

/// Emit a `scf.rescue` span for one ladder transition (a zero-duration
/// marker; the fields are the payload).
fn emit_rescue_span(
    iteration: usize,
    class: TrajectoryClass,
    stage: RescueStage,
    detail: f64,
    level: usize,
) {
    let mut span = mako_trace::span("scf", "rescue");
    if span.is_recording() {
        span.add_field("iter", iteration);
        span.add_field("classification", class.label());
        span.add_field("stage", stage.label());
        span.add_field("detail", detail);
        span.add_field("level", level);
    }
    span.end();
}

/// Diagonalize a Fock matrix in the orthonormal basis and form the density:
/// returns `(D, orbital energies)`. Eigensolver failures propagate — the
/// driver wraps them in [`ScfError::Diagonalization`] with the iteration.
fn density_from_fock(
    f: &Matrix,
    x: &Matrix,
    n_occ: usize,
) -> Result<(Matrix, Vec<f64>), LinalgError> {
    let fp = gemm(&gemm(x, Transpose::Yes, f, Transpose::No), Transpose::No, x, Transpose::No);
    let ed = eigh(&fp)?;
    let c = gemm(x, Transpose::No, &ed.vectors, Transpose::No);
    let n = c.rows();
    let mut d = Matrix::zeros(n, n);
    for mu in 0..n {
        for nu in 0..n {
            let mut s = 0.0;
            for o in 0..n_occ {
                s += c[(mu, o)] * c[(nu, o)];
            }
            d[(mu, nu)] = s;
        }
    }
    Ok((d, ed.values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mako_chem::basis::sto3g::sto3g;
    use mako_chem::builders;

    #[test]
    fn water_rhf_sto3g_textbook_energy() {
        // The anchor test of the whole reproduction: H₂O/STO-3G RHF at the
        // experimental geometry converges to ≈ −74.96 Hartree.
        let mol = builders::water();
        let driver = ScfDriver::new(&mol, &sto3g(), ScfConfig::default());
        let res = driver.run().expect("scf run");
        assert!(res.converged, "SCF must converge");
        assert!(
            (res.energy - (-74.963)).abs() < 0.02,
            "E(H2O/STO-3G) = {} (expected ≈ −74.963)",
            res.energy
        );
        assert!(res.iterations <= 25);
        // Aufbau sanity: 5 occupied orbitals all below the LUMO.
        assert!(res.orbital_energies[4] < res.orbital_energies[5]);
        assert!(res.avg_iteration_seconds > 0.0);
    }

    #[test]
    fn h2_rhf_sto3g() {
        // H₂ at 1.4 Bohr: E(RHF/STO-3G) ≈ −1.117 Hartree.
        let mut mol = Molecule::new("H2");
        mol.atoms.push(mako_chem::Atom {
            element: mako_chem::Element::H,
            position: [0.0, 0.0, 0.0],
        });
        mol.atoms.push(mako_chem::Atom {
            element: mako_chem::Element::H,
            position: [0.0, 0.0, 1.4],
        });
        let driver = ScfDriver::new(&mol, &sto3g(), ScfConfig::default());
        let res = driver.run().expect("scf run");
        assert!(res.converged);
        assert!(
            (res.energy - (-1.117)).abs() < 5e-3,
            "E(H2/STO-3G) = {}",
            res.energy
        );
    }

    #[test]
    fn quantized_scf_matches_fp64_within_chemical_accuracy() {
        // The paper's accuracy criterion: quantized and FP64 total energies
        // agree within 1 mHartree.
        let mol = builders::water();
        let fp64 = ScfDriver::new(&mol, &sto3g(), ScfConfig::default()).run().expect("scf run");
        let quant = ScfDriver::new(
            &mol,
            &sto3g(),
            ScfConfig {
                quantized: true,
                ..ScfConfig::default()
            },
        )
        .run().expect("scf run");
        assert!(quant.converged);
        assert!(quant.stats.quantized_quartets > 0, "quantization must engage");
        let diff = (quant.energy - fp64.energy).abs();
        assert!(
            diff < 1e-3,
            "quantized vs FP64 energy differs by {diff} Ha (> 1 mHa)"
        );
    }

    #[test]
    fn b3lyp_water_converges_below_rhf() {
        let mol = builders::water();
        let rhf = ScfDriver::new(&mol, &sto3g(), ScfConfig::default()).run().expect("scf run");
        let dft = ScfDriver::new(
            &mol,
            &sto3g(),
            ScfConfig {
                method: ScfMethod::Rks(crate::xc::b3lyp()),
                grid: (30, 10),
                ..ScfConfig::default()
            },
        )
        .run().expect("scf run");
        assert!(dft.converged, "B3LYP SCF must converge");
        // B3LYP total energy sits below RHF (correlation energy is
        // negative) but within a plausible window.
        assert!(
            dft.energy < rhf.energy,
            "B3LYP {} should be below RHF {}",
            dft.energy,
            rhf.energy
        );
        assert!(dft.energy > rhf.energy - 1.5, "correlation magnitude sane");
    }

    #[test]
    fn incremental_fock_build_matches_direct() {
        let mol = builders::water();
        let direct = ScfDriver::new(&mol, &sto3g(), ScfConfig::default()).run().expect("scf run");
        let incremental = ScfDriver::new(
            &mol,
            &sto3g(),
            ScfConfig {
                incremental: true,
                ..ScfConfig::default()
            },
        )
        .run().expect("scf run");
        assert!(incremental.converged);
        assert!(
            (incremental.energy - direct.energy).abs() < 1e-7,
            "incremental {} vs direct {}",
            incremental.energy,
            direct.energy
        );
        // ΔD builds compose with quantization: the converged energy stays
        // chemically accurate because the accumulators are purged when the
        // quantized phase ends.
        let quant_inc = ScfDriver::new(
            &mol,
            &sto3g(),
            ScfConfig {
                incremental: true,
                quantized: true,
                ..ScfConfig::default()
            },
        )
        .run().expect("scf run");
        assert!(quant_inc.converged);
        assert!((quant_inc.energy - direct.energy).abs() < 1e-3);
        assert!(
            quant_inc.stats.quantized_quartets > 0,
            "ΔD builds must still engage the quantized pipeline"
        );
    }

    #[test]
    fn incremental_engine_skips_work_and_records_ledger() {
        // The water dimer has weak inter-monomer shell pairs, giving the
        // density-weighted estimates the dynamic range the ΔD screen needs.
        let mol = builders::water_cluster(2);
        let direct = ScfDriver::new(&mol, &sto3g(), ScfConfig::default()).run().expect("scf run");
        let cfg = ScfConfig {
            incremental: true,
            incremental_policy: IncrementalPolicy {
                tau: 1e-8,
                drift_cap: 1e-2,
                ..IncrementalPolicy::default()
            },
            ..ScfConfig::default()
        };
        let inc = ScfDriver::new(&mol, &sto3g(), cfg).run().expect("scf run");
        assert!(inc.converged);
        // Both runs stop once |ΔE| < e_tol = 1e-7, so their converged
        // energies can differ by convergence noise of that order even
        // before any screening error.
        assert!(
            (inc.energy - direct.energy).abs() < 2e-7,
            "incremental {} vs direct {}",
            inc.energy,
            direct.energy
        );
        // The ledger covers every iteration and its totals agree with the
        // flat counters.
        assert_eq!(inc.clock.iterations().len(), inc.iterations);
        assert_eq!(inc.clock.total_skipped(), inc.stats.skipped_quartets);
        assert_eq!(
            inc.clock.total_evaluated(),
            inc.stats.fp64_quartets + inc.stats.quantized_quartets
        );
        // Iteration 0 is a full rebuild by construction.
        assert!(inc.clock.iterations()[0].rebuild);
        // The ΔD screen engages as the density settles, so incremental
        // iterations must skip quartets and run less work than the full
        // rebuild of iteration 0.
        assert!(inc.stats.skipped_quartets > 0, "ΔD screen never engaged");
        let first = &inc.clock.iterations()[0];
        let best = inc
            .clock
            .iterations()
            .iter()
            .filter(|l| !l.rebuild)
            .min_by_key(|l| l.evaluated_quartets)
            .expect("at least one incremental iteration");
        assert!(
            best.evaluated_quartets < first.evaluated_quartets,
            "incremental iterations ({}) should evaluate fewer quartets \
             than the initial full build ({})",
            best.evaluated_quartets,
            first.evaluated_quartets
        );
        // Skipped work is never priced: the cheapest incremental iteration's
        // ERI stage undercuts the full rebuild's on the device clock.
        assert!(best.eri_seconds < first.eri_seconds);
    }

    #[test]
    fn convergence_is_certified_on_rebuilt_fock() {
        // Near convergence the ΔD screen skips essentially everything,
        // freezing the Fock pieces — |ΔE| then collapses because nothing
        // was updated. The engine must not accept that signal: the final
        // iteration has to be a full rebuild, and the certified energy must
        // match the direct reference to convergence noise (~e_tol), not to
        // the (much larger) screening drift. τ must stay small enough that
        // one screened iteration re-accumulates less than e_tol of drift,
        // or certification (correctly) never passes.
        let mol = builders::water_cluster(2);
        let direct = ScfDriver::new(&mol, &sto3g(), ScfConfig::default()).run().expect("scf run");
        let cfg = ScfConfig {
            incremental: true,
            incremental_policy: IncrementalPolicy {
                tau: 1e-8,
                rebuild_period: 0,
                drift_cap: 1e2,
                divergence_factor: 10.0,
            },
            ..ScfConfig::default()
        };
        let inc = ScfDriver::new(&mol, &sto3g(), cfg).run().expect("scf run");
        assert!(inc.converged);
        assert!(
            inc.clock.iterations().last().expect("ledger").rebuild,
            "converged on a screened build without certification"
        );
        assert!(
            (inc.energy - direct.energy).abs() < 1e-6,
            "certified energy drifted: {} vs {}",
            inc.energy,
            direct.energy
        );
    }

    #[test]
    fn divergence_guard_restarts_cleanly() {
        // A pathological policy (rebuild every iteration, huge τ) still
        // converges to the right energy because every iteration is a full
        // rebuild whenever τ-induced drift trips the cap.
        let mol = builders::water();
        let direct = ScfDriver::new(&mol, &sto3g(), ScfConfig::default()).run().expect("scf run");
        let cfg = ScfConfig {
            incremental: true,
            incremental_policy: IncrementalPolicy {
                tau: 1e-7,
                rebuild_period: 2,
                drift_cap: 1e-10,
                divergence_factor: 2.0,
            },
            ..ScfConfig::default()
        };
        let inc = ScfDriver::new(&mol, &sto3g(), cfg).run().expect("scf run");
        assert!(inc.converged);
        assert!(
            (inc.energy - direct.energy).abs() < 1e-6,
            "aggressive policy drifted: {} vs {}",
            inc.energy,
            direct.energy
        );
        // With rebuild_period=2 at least half the iterations are rebuilds.
        let rebuilds = inc.clock.iterations().iter().filter(|l| l.rebuild).count();
        assert!(rebuilds * 3 >= inc.iterations, "rebuild policy inactive");
    }

    #[test]
    fn iteration_timing_metric_excludes_first() {
        let mol = builders::water();
        let res = ScfDriver::new(&mol, &sto3g(), ScfConfig::default()).run().expect("scf run");
        assert!(res.iteration_seconds.len() >= 2);
        let manual =
            res.iteration_seconds[1..].iter().sum::<f64>() / (res.iteration_seconds.len() - 1) as f64;
        assert!((res.avg_iteration_seconds - manual).abs() < 1e-15);
    }
}
