//! Restricted Hartree–Fock and restricted Kohn–Sham (DFT) drivers.
//!
//! The driver executes the paper's three-stage DFT workflow per iteration —
//! ERI/Fock build on the (simulated) accelerator, exchange-correlation
//! quadrature assembled as MatMuls, dense diagonalization — and reports the
//! paper's metrics: total energy, average SCF-iteration *device* time
//! excluding the first iteration (Figure 8's metric), and scheduling
//! statistics.

use crate::diis::Diis;
use crate::fock::{build_jk_with_configs, FockBuildStats, FockEngineOptions};
use crate::grid::MolecularGrid;
use crate::xc::{evaluate_aos, evaluate_xc, hartree_fock, AoOnGrid, XcFunctional};
use mako_accel::{CostModel, DeviceSpec};
use mako_chem::{AoLayout, BasisSet, Molecule, Shell};
use mako_compiler::KernelCache;
use mako_eri::batch::{batch_quartets, QuartetBatch};
use mako_eri::one_electron::one_electron_matrices;
use mako_eri::screening::{build_screened_pairs, ScreenedPair};
use mako_kernels::pipeline::PipelineConfig;
use mako_linalg::{eigh, gemm, sym_inv_sqrt, Matrix, Transpose};
use mako_precision::Precision;
use mako_quant::QuantSchedule;

/// Electronic-structure method.
#[derive(Debug, Clone)]
pub enum ScfMethod {
    /// Restricted Hartree–Fock.
    Rhf,
    /// Restricted Kohn–Sham with the given functional (typically B3LYP).
    Rks(XcFunctional),
}

/// SCF configuration.
#[derive(Debug, Clone)]
pub struct ScfConfig {
    /// Method (RHF or RKS).
    pub method: ScfMethod,
    /// Energy convergence threshold (the paper uses 1e-7).
    pub e_tol: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Enable QuantMako (quantized kernels with convergence-aware
    /// scheduling); `false` = pure FP64 reference.
    pub quantized: bool,
    /// Shell-pair / quartet Schwarz screening threshold.
    pub screening: f64,
    /// Incremental Fock build: evaluate the two-electron contribution from
    /// the density *difference* each iteration (`G += G(ΔD)`). As the SCF
    /// converges ΔD shrinks, so the density-weighted Schwarz estimates fall
    /// and the scheduler prunes/quantizes ever more work — the classic
    /// direct-SCF optimization, compounding with QuantMako's scheduling.
    pub incremental: bool,
    /// DFT grid fineness (radial shells, θ points).
    pub grid: (usize, usize),
    /// Simulated device to run on.
    pub device: DeviceSpec,
}

impl Default for ScfConfig {
    fn default() -> ScfConfig {
        ScfConfig {
            method: ScfMethod::Rhf,
            e_tol: 1e-7,
            max_iterations: 100,
            quantized: false,
            screening: 1e-10,
            incremental: false,
            grid: (30, 10),
            device: DeviceSpec::a100(),
        }
    }
}

/// Converged (or not) SCF outcome.
#[derive(Debug, Clone)]
pub struct ScfResult {
    /// Total energy (electronic + nuclear), Hartree.
    pub energy: f64,
    /// Nuclear repulsion part.
    pub e_nuclear: f64,
    /// Whether |ΔE| fell below tolerance within the iteration budget.
    pub converged: bool,
    /// Iterations executed.
    pub iterations: usize,
    /// Orbital energies (ascending).
    pub orbital_energies: Vec<f64>,
    /// Final density matrix (D = Σ_occ C Cᵀ).
    pub density: Matrix,
    /// Simulated device seconds per iteration.
    pub iteration_seconds: Vec<f64>,
    /// Average iteration device time excluding the first iteration —
    /// Figure 8's reported metric.
    pub avg_iteration_seconds: f64,
    /// Total simulated device seconds.
    pub total_seconds: f64,
    /// Accumulated Fock-build statistics.
    pub stats: FockBuildStats,
}

/// The SCF driver: owns the basis instantiation, screened pairs, quartet
/// batches, tuned kernel configurations, and (for DFT) the grid.
pub struct ScfDriver {
    mol: Molecule,
    shells: Vec<Shell>,
    layout: AoLayout,
    pairs: Vec<ScreenedPair>,
    batches: Vec<QuartetBatch>,
    model: CostModel,
    config: ScfConfig,
    fp64_cfgs: Vec<PipelineConfig>,
    quant_cfgs: Vec<PipelineConfig>,
    grid: Option<MolecularGrid>,
    aos: Option<AoOnGrid>,
}

impl ScfDriver {
    /// Prepare a driver: instantiate the basis, screen pairs, batch
    /// quartets, tune kernels (via the CompilerMako cache), and build the
    /// DFT grid when needed.
    pub fn new(mol: &Molecule, basis: &BasisSet, config: ScfConfig) -> ScfDriver {
        let shells = basis.shells_for(mol);
        let layout = AoLayout::new(&shells);
        let pairs = build_screened_pairs(&shells, config.screening);
        let batches = batch_quartets(&pairs, config.screening * config.screening);
        let model = CostModel::new(config.device.clone());

        // Architecture-tuned configuration per ERI class and precision.
        let cache = KernelCache::new();
        let fp64_cfgs: Vec<PipelineConfig> = batches
            .iter()
            .map(|b| cache.get_or_tune(&b.class, Precision::Fp64, &model).config)
            .collect();
        let quant_cfgs: Vec<PipelineConfig> = batches
            .iter()
            .map(|b| cache.get_or_tune(&b.class, Precision::Fp16, &model).config)
            .collect();

        let (grid, aos) = match &config.method {
            ScfMethod::Rks(_) => {
                let g = MolecularGrid::build(mol, config.grid.0, config.grid.1);
                let a = evaluate_aos(&shells, &g);
                (Some(g), Some(a))
            }
            ScfMethod::Rhf => (None, None),
        };

        ScfDriver {
            mol: mol.clone(),
            shells,
            layout,
            pairs,
            batches,
            model,
            config,
            fp64_cfgs,
            quant_cfgs,
            grid,
            aos,
        }
    }

    /// Number of spherical AOs.
    pub fn nao(&self) -> usize {
        self.layout.nao
    }

    /// Number of surviving quartet batches (ERI classes).
    pub fn nbatches(&self) -> usize {
        self.batches.len()
    }

    /// Run the SCF to convergence.
    pub fn run(&self) -> ScfResult {
        let n_occ = self.mol.n_electrons() / 2;
        assert!(
            self.mol.n_electrons().is_multiple_of(2),
            "restricted driver requires a closed shell"
        );
        let functional = match &self.config.method {
            ScfMethod::Rhf => hartree_fock(),
            ScfMethod::Rks(f) => f.clone(),
        };

        let (s, t, v) = one_electron_matrices(&self.shells, &self.mol);
        let h = t.add(&v);
        let x = sym_inv_sqrt(&s, 1e-10).expect("overlap must be positive definite");
        let e_nuc = self.mol.nuclear_repulsion();

        // Core-Hamiltonian initial guess.
        let mut d = density_from_fock(&h, &x, n_occ).0;
        // Incremental-build state: accumulated G matrices and the density
        // they correspond to.
        let nao = self.layout.nao;
        let mut j_acc = Matrix::zeros(nao, nao);
        let mut k_acc = Matrix::zeros(nao, nao);
        let mut d_ref = Matrix::zeros(nao, nao);
        let mut was_quantized_phase = false;

        let mut diis = Diis::new(8);
        let mut e_prev = f64::INFINITY;
        let mut residual = 1.0f64;
        let mut iteration_seconds = Vec::new();
        let mut total_stats = FockBuildStats::default();
        let mut converged = false;
        let mut energy = 0.0;
        let mut orbital_energies = Vec::new();

        for iter in 0..self.config.max_iterations {
            let schedule = if self.config.quantized {
                QuantSchedule::for_iteration(residual, self.config.e_tol)
            } else {
                QuantSchedule::fp64_reference(self.config.e_tol * 1e-5)
            };

            // J/K build per batch with the tuned configs. With the
            // incremental option, integrals contract against ΔD = D − D_ref
            // and accumulate onto the previous G. The accumulators are
            // purged (full rebuild) when the quantization phase ends —
            // otherwise early low-precision error would persist in G — and
            // periodically as numerical hygiene (the standard direct-SCF
            // reset).
            let nq = self.layout.nao;
            let leaving_quant_phase = was_quantized_phase && !schedule.allow_quantized;
            was_quantized_phase = schedule.allow_quantized;
            if self.config.incremental && (leaving_quant_phase || iter % 8 == 0) {
                j_acc = Matrix::zeros(nq, nq);
                k_acc = Matrix::zeros(nq, nq);
                d_ref = Matrix::zeros(nq, nq);
            }
            let build_density = if self.config.incremental {
                let mut delta = d.clone();
                delta.axpy(-1.0, &d_ref);
                delta
            } else {
                d.clone()
            };
            // One engine call assembles every batch with its own tuned
            // configs; the engine parallelizes across the rayon pool.
            let (jk, st) = build_jk_with_configs(
                &build_density,
                &self.pairs,
                &self.batches,
                &self.layout,
                &schedule,
                |bi| (self.fp64_cfgs[bi], self.quant_cfgs[bi]),
                &self.model,
                FockEngineOptions::default(),
            );
            let (mut j, mut k) = (jk.j, jk.k);
            let mut iter_seconds = st.device_seconds;
            total_stats.fp64_quartets += st.fp64_quartets;
            total_stats.quantized_quartets += st.quantized_quartets;
            total_stats.pruned_quartets += st.pruned_quartets;
            if self.config.incremental {
                j_acc.axpy(1.0, &j);
                k_acc.axpy(1.0, &k);
                j = j_acc.clone();
                k = k_acc.clone();
                d_ref = d.clone();
            }

            // Exchange-correlation (DFT only).
            let (e_xc, v_xc, xc_seconds) = match (&self.grid, &self.aos) {
                (Some(grid), Some(aos)) => {
                    let res = evaluate_xc(&functional, aos, grid, &d);
                    let secs = self.xc_device_seconds(grid.len());
                    (res.energy, Some(res.matrix), secs)
                }
                _ => (0.0, None, 0.0),
            };
            iter_seconds += xc_seconds;

            // Fock matrix: F = H + 2J − a·K (+ V_xc).
            let mut f = h.clone();
            f.axpy(2.0, &j);
            f.axpy(-functional.hf_exchange, &k);
            if let Some(vxc) = &v_xc {
                f.axpy(1.0, vxc);
            }

            // Energy.
            let e_elec = 2.0 * d.dot(&h) + 2.0 * d.dot(&j) - functional.hf_exchange * d.dot(&k)
                + e_xc;
            energy = e_elec + e_nuc;

            // DIIS extrapolation.
            let err = Diis::error_vector(&f, &d, &s, &x);
            residual = err.norm_fro() / (self.layout.nao as f64);
            let f_diis = diis.extrapolate(f, err);

            // Diagonalize (replicated serial stage — costed separately).
            let (d_new, eps) = density_from_fock(&f_diis, &x, n_occ);
            iter_seconds += self.diag_device_seconds();
            iteration_seconds.push(iter_seconds);

            let de = (energy - e_prev).abs();
            e_prev = energy;
            d = d_new;
            orbital_energies = eps;

            if de < self.config.e_tol && residual < self.config.e_tol.sqrt() {
                converged = true;
                // When quantized, require a final FP64-clean iteration: the
                // schedule disables quantization near convergence, so one
                // more pass confirms the energy at full precision.
                if !self.config.quantized || iter > 0 {
                    break;
                }
            }
            // Use |ΔE| as the scheduling residual for the next iteration.
            residual = residual.max(de.min(1.0));
        }

        let avg = if iteration_seconds.len() > 1 {
            iteration_seconds[1..].iter().sum::<f64>() / (iteration_seconds.len() - 1) as f64
        } else {
            iteration_seconds.first().copied().unwrap_or(0.0)
        };
        total_stats.device_seconds = iteration_seconds.iter().sum();

        ScfResult {
            energy,
            e_nuclear: e_nuc,
            converged,
            iterations: iteration_seconds.len(),
            orbital_energies,
            density: d,
            avg_iteration_seconds: avg,
            total_seconds: iteration_seconds.iter().sum(),
            iteration_seconds,
            stats: total_stats,
        }
    }

    /// Simulated device time of the XC quadrature: three `npts × nao × nao`
    /// GEMMs (FP64 tensor pipes) plus grid-local functional evaluation.
    fn xc_device_seconds(&self, npts: usize) -> f64 {
        let nao = self.layout.nao as f64;
        let gemm_flops = 3.0 * 2.0 * npts as f64 * nao * nao;
        let local_flops = 200.0 * npts as f64;
        let bytes = (npts as f64 * nao * 8.0) * 2.0;
        let mut p = mako_accel::KernelProfile::named("xc_quadrature");
        p.tensor_flops.push((Precision::Fp64, gemm_flops));
        p.cuda_flops.push((Precision::Fp64, local_flops));
        p.global_read = bytes;
        p.global_write = bytes * 0.1;
        p.smem_per_block = 32 * 1024;
        self.model.evaluate(&p).total_s
    }

    /// Simulated device time of the dense diagonalization — the replicated
    /// serial stage of the distributed runs. Eigensolvers reach only a
    /// small fraction of peak.
    fn diag_device_seconds(&self) -> f64 {
        let n = self.layout.nao as f64;
        let flops = 9.0 * n * n * n;
        flops / (0.05 * self.model.device.cuda_peak(Precision::Fp64)) + 50.0e-6
    }
}

/// Diagonalize a Fock matrix in the orthonormal basis and form the density:
/// returns `(D, orbital energies)`.
fn density_from_fock(f: &Matrix, x: &Matrix, n_occ: usize) -> (Matrix, Vec<f64>) {
    let fp = gemm(&gemm(x, Transpose::Yes, f, Transpose::No), Transpose::No, x, Transpose::No);
    let ed = eigh(&fp).expect("Fock diagonalization failed");
    let c = gemm(x, Transpose::No, &ed.vectors, Transpose::No);
    let n = c.rows();
    let mut d = Matrix::zeros(n, n);
    for mu in 0..n {
        for nu in 0..n {
            let mut s = 0.0;
            for o in 0..n_occ {
                s += c[(mu, o)] * c[(nu, o)];
            }
            d[(mu, nu)] = s;
        }
    }
    (d, ed.values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mako_chem::basis::sto3g::sto3g;
    use mako_chem::builders;

    #[test]
    fn water_rhf_sto3g_textbook_energy() {
        // The anchor test of the whole reproduction: H₂O/STO-3G RHF at the
        // experimental geometry converges to ≈ −74.96 Hartree.
        let mol = builders::water();
        let driver = ScfDriver::new(&mol, &sto3g(), ScfConfig::default());
        let res = driver.run();
        assert!(res.converged, "SCF must converge");
        assert!(
            (res.energy - (-74.963)).abs() < 0.02,
            "E(H2O/STO-3G) = {} (expected ≈ −74.963)",
            res.energy
        );
        assert!(res.iterations <= 25);
        // Aufbau sanity: 5 occupied orbitals all below the LUMO.
        assert!(res.orbital_energies[4] < res.orbital_energies[5]);
        assert!(res.avg_iteration_seconds > 0.0);
    }

    #[test]
    fn h2_rhf_sto3g() {
        // H₂ at 1.4 Bohr: E(RHF/STO-3G) ≈ −1.117 Hartree.
        let mut mol = Molecule::new("H2");
        mol.atoms.push(mako_chem::Atom {
            element: mako_chem::Element::H,
            position: [0.0, 0.0, 0.0],
        });
        mol.atoms.push(mako_chem::Atom {
            element: mako_chem::Element::H,
            position: [0.0, 0.0, 1.4],
        });
        let driver = ScfDriver::new(&mol, &sto3g(), ScfConfig::default());
        let res = driver.run();
        assert!(res.converged);
        assert!(
            (res.energy - (-1.117)).abs() < 5e-3,
            "E(H2/STO-3G) = {}",
            res.energy
        );
    }

    #[test]
    fn quantized_scf_matches_fp64_within_chemical_accuracy() {
        // The paper's accuracy criterion: quantized and FP64 total energies
        // agree within 1 mHartree.
        let mol = builders::water();
        let fp64 = ScfDriver::new(&mol, &sto3g(), ScfConfig::default()).run();
        let quant = ScfDriver::new(
            &mol,
            &sto3g(),
            ScfConfig {
                quantized: true,
                ..ScfConfig::default()
            },
        )
        .run();
        assert!(quant.converged);
        assert!(quant.stats.quantized_quartets > 0, "quantization must engage");
        let diff = (quant.energy - fp64.energy).abs();
        assert!(
            diff < 1e-3,
            "quantized vs FP64 energy differs by {diff} Ha (> 1 mHa)"
        );
    }

    #[test]
    fn b3lyp_water_converges_below_rhf() {
        let mol = builders::water();
        let rhf = ScfDriver::new(&mol, &sto3g(), ScfConfig::default()).run();
        let dft = ScfDriver::new(
            &mol,
            &sto3g(),
            ScfConfig {
                method: ScfMethod::Rks(crate::xc::b3lyp()),
                grid: (30, 10),
                ..ScfConfig::default()
            },
        )
        .run();
        assert!(dft.converged, "B3LYP SCF must converge");
        // B3LYP total energy sits below RHF (correlation energy is
        // negative) but within a plausible window.
        assert!(
            dft.energy < rhf.energy,
            "B3LYP {} should be below RHF {}",
            dft.energy,
            rhf.energy
        );
        assert!(dft.energy > rhf.energy - 1.5, "correlation magnitude sane");
    }

    #[test]
    fn incremental_fock_build_matches_direct() {
        let mol = builders::water();
        let direct = ScfDriver::new(&mol, &sto3g(), ScfConfig::default()).run();
        let incremental = ScfDriver::new(
            &mol,
            &sto3g(),
            ScfConfig {
                incremental: true,
                ..ScfConfig::default()
            },
        )
        .run();
        assert!(incremental.converged);
        assert!(
            (incremental.energy - direct.energy).abs() < 1e-7,
            "incremental {} vs direct {}",
            incremental.energy,
            direct.energy
        );
        // ΔD builds compose with quantization: the converged energy stays
        // chemically accurate because the accumulators are purged when the
        // quantized phase ends.
        let quant_inc = ScfDriver::new(
            &mol,
            &sto3g(),
            ScfConfig {
                incremental: true,
                quantized: true,
                ..ScfConfig::default()
            },
        )
        .run();
        assert!(quant_inc.converged);
        assert!((quant_inc.energy - direct.energy).abs() < 1e-3);
        assert!(
            quant_inc.stats.quantized_quartets > 0,
            "ΔD builds must still engage the quantized pipeline"
        );
    }

    #[test]
    fn iteration_timing_metric_excludes_first() {
        let mol = builders::water();
        let res = ScfDriver::new(&mol, &sto3g(), ScfConfig::default()).run();
        assert!(res.iteration_seconds.len() >= 2);
        let manual =
            res.iteration_seconds[1..].iter().sum::<f64>() / (res.iteration_seconds.len() - 1) as f64;
        assert!((res.avg_iteration_seconds - manual).abs() < 1e-15);
    }
}
