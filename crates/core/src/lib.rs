//! # Mako — matrix-aligned quantum chemistry for AI accelerators
//!
//! A from-scratch Rust reproduction of *"Matrix Is All You Need:
//! Rearchitecting Quantum Chemistry to Scale on AI Accelerators"* (SC '25).
//!
//! Mako restructures density-functional-theory computations — dominated by
//! two-electron repulsion integrals (ERIs) — into batched matrix
//! multiplications executed on tensor-core hardware, with physics-informed
//! quantization and a compiler-style kernel planner. This workspace
//! implements the complete system plus every substrate it needs (no BLAS,
//! LAPACK, or chemistry dependencies), substituting a calibrated simulated
//! accelerator for the CUDA/CUTLASS hardware layer (see `DESIGN.md`).
//!
//! ## Quick start
//!
//! ```
//! use mako::prelude::*;
//!
//! let water = mako::chem::builders::water();
//! let result = MakoEngine::new()
//!     .run_rhf(&water, BasisFamily::Sto3g)
//!     .expect("SCF run failed");
//! assert!(result.converged);
//! assert!((result.energy - (-74.96)).abs() < 0.02);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`precision`] | `mako-precision` | software f16/bf16/tf32 + quantization |
//! | [`linalg`] | `mako-linalg` | matrices, GEMM, eigensolver |
//! | [`accel`] | `mako-accel` | simulated tensor-core device + cluster |
//! | [`chem`] | `mako-chem` | molecules, basis sets, solid harmonics |
//! | [`eri`] | `mako-eri` | Boys, MMD matrix-form ERIs, Obara–Saika |
//! | [`kernels`] | `mako-kernels` | KernelMako fused/quantized pipelines |
//! | [`quant`] | `mako-quant` | QuantMako scheduling + accumulation |
//! | [`compiler`] | `mako-compiler` | CompilerMako planning + autotuning |
//! | [`scf`] | `mako-scf` | RHF/RKS drivers, XC stack, scaling model |
//! | [`server`] | `mako-server` | multi-tenant job runtime: admission, deadlines, preemption |
//! | [`trace`] | `mako-trace` | structured tracing + metrics (spans, counters, exporters) |

pub use mako_accel as accel;
pub use mako_chem as chem;
pub use mako_compiler as compiler;
pub use mako_eri as eri;
pub use mako_kernels as kernels;
pub use mako_linalg as linalg;
pub use mako_precision as precision;
pub use mako_quant as quant;
pub use mako_scf as scf;
pub use mako_server as server;
pub use mako_store as store;
pub use mako_trace as trace;

use mako_accel::DeviceSpec;
use mako_chem::{BasisFamily, Molecule};
use mako_scf::{RescueConfig, ScfConfig, ScfDriver, ScfError, ScfMethod, ScfResult};

/// Commonly used items, one import away.
pub mod prelude {
    pub use crate::MakoEngine;
    pub use mako_accel::{DeviceKind, DeviceSpec};
    pub use mako_chem::{BasisFamily, Element, Molecule};
    pub use mako_scf::{ScfConfig, ScfError, ScfMethod, ScfResult};
    pub use mako_server::{JobOutcome, JobSpec, MakoServer, PriorityClass, ServerChaos};
}

/// High-level entry point: configure once, run calculations.
///
/// Wraps basis-set instantiation, Schwarz screening, CompilerMako kernel
/// tuning, QuantMako scheduling, and the SCF loop behind two calls.
#[derive(Debug, Clone)]
pub struct MakoEngine {
    /// Simulated device calculations run on.
    pub device: DeviceSpec,
    /// Enable QuantMako quantized kernels with convergence-aware
    /// scheduling.
    pub quantized: bool,
    /// SCF energy tolerance (paper default 1e-7).
    pub e_tol: f64,
    /// Enable the self-healing SCF layer (convergence watchdog + staged
    /// rescue ladder); inert — bitwise — on healthy runs.
    pub rescue: bool,
}

impl Default for MakoEngine {
    fn default() -> Self {
        MakoEngine::new()
    }
}

impl MakoEngine {
    /// Engine with the paper's defaults: A100 device, FP64 kernels,
    /// SCF convergence 1e-7.
    pub fn new() -> MakoEngine {
        MakoEngine {
            device: DeviceSpec::a100(),
            quantized: false,
            e_tol: 1e-7,
            rescue: false,
        }
    }

    /// Enable the QuantMako quantized pipelines.
    pub fn with_quantization(mut self, on: bool) -> MakoEngine {
        self.quantized = on;
        self
    }

    /// Enable the self-healing SCF layer (watchdog + rescue ladder with the
    /// default [`RescueConfig`]). On a healthy trajectory the result is
    /// bitwise identical to a run without it.
    pub fn with_rescue(mut self, on: bool) -> MakoEngine {
        self.rescue = on;
        self
    }

    /// Target a different simulated device.
    pub fn on_device(mut self, device: DeviceSpec) -> MakoEngine {
        self.device = device;
        self
    }

    fn config(&self, method: ScfMethod) -> ScfConfig {
        ScfConfig {
            method,
            e_tol: self.e_tol,
            quantized: self.quantized,
            device: self.device.clone(),
            rescue: self.rescue.then(RescueConfig::default),
            ..ScfConfig::default()
        }
    }

    /// Restricted Hartree–Fock on a molecule with a basis family.
    pub fn run_rhf(&self, mol: &Molecule, basis: BasisFamily) -> Result<ScfResult, ScfError> {
        let b = basis.basis_for(&mol.elements());
        ScfDriver::try_new(mol, &b, self.config(ScfMethod::Rhf))?.run()
    }

    /// Restricted Kohn–Sham B3LYP (the paper's functional).
    pub fn run_b3lyp(&self, mol: &Molecule, basis: BasisFamily) -> Result<ScfResult, ScfError> {
        let b = basis.basis_for(&mol.elements());
        ScfDriver::try_new(mol, &b, self.config(ScfMethod::Rks(mako_scf::xc::b3lyp())))?.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mako_chem::builders;

    #[test]
    fn engine_runs_water_rhf() {
        let res = MakoEngine::new()
            .run_rhf(&builders::water(), BasisFamily::Sto3g)
            .expect("scf run");
        assert!(res.converged);
        assert!((res.energy + 74.963).abs() < 0.02);
    }

    #[test]
    fn engine_quantized_agrees_to_chemical_accuracy() {
        let mol = builders::water();
        let e_ref = MakoEngine::new()
            .run_rhf(&mol, BasisFamily::Sto3g)
            .expect("scf run")
            .energy;
        let quant = MakoEngine::new()
            .with_quantization(true)
            .run_rhf(&mol, BasisFamily::Sto3g)
            .expect("scf run");
        assert!(quant.converged);
        assert!((quant.energy - e_ref).abs() < 1e-3, "Δ = {}", quant.energy - e_ref);
    }

    #[test]
    fn engine_rescue_is_inert_on_healthy_runs() {
        let mol = builders::water();
        let plain = MakoEngine::new()
            .run_rhf(&mol, BasisFamily::Sto3g)
            .expect("scf run");
        let rescued = MakoEngine::new()
            .with_rescue(true)
            .run_rhf(&mol, BasisFamily::Sto3g)
            .expect("scf run");
        assert!(rescued.rescue.is_empty(), "healthy water must need no rescue");
        assert_eq!(plain.energy.to_bits(), rescued.energy.to_bits());
        assert_eq!(plain.iterations, rescued.iterations);
    }

    #[test]
    fn engine_reports_unsupported_element_as_typed_error() {
        use mako_chem::Element;
        let mut mol = builders::water();
        mol.atoms[0].element = Element::FE;
        let err = MakoEngine::new()
            .run_rhf(&mol, BasisFamily::Sto3g)
            .expect_err("STO-3G lacks Fe, so the run must fail");
        assert!(matches!(err, ScfError::Basis(_)), "{err:?}");
        assert!(err.to_string().contains("Fe"), "{err}");
    }

    #[test]
    fn engine_device_selection_changes_timing_not_energy() {
        use mako_accel::DeviceKind;
        let mol = builders::water();
        let a100 = MakoEngine::new()
            .run_rhf(&mol, BasisFamily::Sto3g)
            .expect("scf run");
        let h100 = MakoEngine::new()
            .on_device(DeviceSpec::new(DeviceKind::H100))
            .run_rhf(&mol, BasisFamily::Sto3g)
            .expect("scf run");
        assert!((a100.energy - h100.energy).abs() < 1e-10);
        assert!(h100.avg_iteration_seconds < a100.avg_iteration_seconds);
    }
}
