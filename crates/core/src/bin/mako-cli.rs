//! The Mako command-line driver — the reproduction of the paper artifact's
//! `build/bin/shark --mol sample/water60.xyz` entry point.
//!
//! ```sh
//! cargo run --release -p mako --bin mako-cli -- --mol sample/water60.xyz
//! cargo run --release -p mako --bin mako-cli -- \
//!     --mol sample/water60.xyz --basis sto-3g --method rhf --quantized --gpus 8
//! ```
//!
//! Like the artifact, it reports the total wall-clock time, the average SCF
//! iteration time excluding the first iteration (the Figure 8 metric), and
//! the energy decomposition used to verify accuracy against other packages.

use mako::prelude::*;
use std::process::ExitCode;

struct Args {
    mol: Option<String>,
    basis: BasisFamily,
    method: String,
    quantized: bool,
    rescue: bool,
    gpus: usize,
    trace: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mol: None,
        basis: BasisFamily::Sto3g,
        method: "rhf".to_string(),
        quantized: false,
        rescue: false,
        gpus: 1,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--mol" => args.mol = Some(it.next().ok_or("--mol needs a path")?),
            "--basis" => {
                let name = it.next().ok_or("--basis needs a name")?;
                args.basis = match name.to_lowercase().as_str() {
                    "sto-3g" | "sto3g" => BasisFamily::Sto3g,
                    "def2-tzvp" => BasisFamily::Def2TzvpLike,
                    "def2-qzvp" => BasisFamily::Def2QzvpLike,
                    "cc-pvtz" => BasisFamily::CcPvtzLike,
                    "cc-pvqz" => BasisFamily::CcPvqzLike,
                    other => return Err(format!("unknown basis {other}")),
                };
            }
            "--method" => args.method = it.next().ok_or("--method needs rhf|b3lyp")?,
            "--quantized" => args.quantized = true,
            "--rescue" => args.rescue = true,
            "--gpus" => {
                args.gpus = it
                    .next()
                    .ok_or("--gpus needs a count")?
                    .parse()
                    .map_err(|e| format!("--gpus: {e}"))?
            }
            "--trace" => args.trace = Some(it.next().ok_or("--trace needs a path")?),
            "--help" | "-h" => {
                println!(
                    "usage: mako-cli --mol FILE.xyz [--basis sto-3g|def2-tzvp|def2-qzvp|cc-pvtz|cc-pvqz]\n\
                     \x20              [--method rhf|b3lyp] [--quantized] [--rescue] [--gpus N] [--trace FILE.jsonl]\n\
                     \n\
                     --rescue      enable the self-healing SCF layer (convergence watchdog +\n\
                     \x20             staged rescue ladder); bitwise inert on healthy runs.\n\
                     --trace FILE  record a structured trace of the run (spans, counters) to FILE;\n\
                     \x20             `.chrome.json` suffix switches to the Chrome trace format.\n\
                     \x20             The MAKO_TRACE env var does the same for any Mako binary."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // MAKO_TRACE=path works for every Mako binary; --trace overrides it.
    mako::trace::init_from_env();
    if let Some(path) = &args.trace {
        let format = if path.ends_with(".chrome.json") {
            mako::trace::TraceFormat::Chrome
        } else {
            mako::trace::TraceFormat::Jsonl
        };
        mako::trace::set_sink(path.clone(), format);
    }
    let Some(path) = &args.mol else {
        eprintln!("error: --mol FILE.xyz is required (see --help)");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mol = match Molecule::from_xyz(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error parsing {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("Mako — matrix-aligned quantum chemistry (Rust reproduction)");
    println!("molecule : {} ({} atoms, {} electrons)", mol.name, mol.natoms(), mol.n_electrons());
    println!("basis    : {}", args.basis.name());
    println!("method   : {}{}", args.method.to_uppercase(), if args.quantized { " + QuantMako" } else { "" });
    println!("device   : simulated NVIDIA A100 ×{}\n", args.gpus);

    // STO-3G only covers H/C/N/O; the synthetic families cover everything.
    let engine = MakoEngine::new()
        .with_quantization(args.quantized)
        .with_rescue(args.rescue);
    let wall = std::time::Instant::now();
    let run = match args.method.as_str() {
        "rhf" => engine.run_rhf(&mol, args.basis),
        "b3lyp" => engine.run_b3lyp(&mol, args.basis),
        other => {
            eprintln!("error: unknown method {other} (rhf|b3lyp)");
            return ExitCode::FAILURE;
        }
    };
    let result = match run {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: SCF run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wall = wall.elapsed();

    println!("SCF {} in {} iterations", if result.converged { "converged" } else { "DID NOT CONVERGE" }, result.iterations);
    println!("----------------------------------------------");
    println!("Nuclear repulsion : {:>18.10} Ha", result.e_nuclear);
    println!("Electronic energy : {:>18.10} Ha", result.energy - result.e_nuclear);
    println!("Total Energy      : {:>18.10} Ha", result.energy);
    println!("----------------------------------------------");
    println!("avg SCF iteration (excl. first): {:.4} s simulated device time", result.avg_iteration_seconds);
    println!("total simulated device time    : {:.4} s", result.total_seconds);
    println!("host wall-clock (this CPU)     : {:.2} s", wall.as_secs_f64());
    println!(
        "quartets: {} FP64 / {} quantized / {} pruned",
        result.stats.fp64_quartets, result.stats.quantized_quartets, result.stats.pruned_quartets
    );
    if result.orth.n_dropped > 0 {
        println!(
            "orthogonalization dropped {} near-dependent AO direction(s) \
             (smallest kept overlap eigenvalue {:.3e})",
            result.orth.n_dropped, result.orth.smallest_kept
        );
    }
    if args.rescue {
        if result.rescue.is_empty() {
            println!("rescue: enabled, never fired (trajectory healthy)");
        } else {
            println!("rescue: {} intervention(s) — {}", result.rescue.len(), result.rescue.summary());
        }
    }

    if args.gpus > 1 {
        // Multi-GPU estimate from the cluster model (one rank per GPU).
        let spec = mako::accel::cluster::ClusterSpec::azure_nd_a100_v4();
        let per_iter = result.avg_iteration_seconds;
        let comm = mako::accel::cluster::RingAllreduce::new(spec)
            .time(2.0 * (result.density.rows() * result.density.rows()) as f64 * 8.0, args.gpus);
        let t = per_iter / args.gpus as f64 + comm;
        println!(
            "\nmulti-GPU estimate: {:.4} s/iteration on {} GPUs ({:.0}% efficiency)",
            t,
            args.gpus,
            100.0 * per_iter / (args.gpus as f64 * t)
        );
    }
    match mako::trace::flush() {
        Some(Ok(path)) => println!("\ntrace written to {path}"),
        Some(Err(e)) => eprintln!("\nwarning: trace write failed: {e}"),
        None => {}
    }
    if result.converged {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
