//! Property-based oracle suite for the packed-tile microkernel engine.
//!
//! Three oracles, per the determinism contract of DESIGN.md §13:
//!
//! * **accuracy** — the engine matches `gemm_naive` to 1-ulp-scale
//!   tolerance on arbitrary `(m, k, n)` (including edge tiles smaller than
//!   `MR×NR`), all four transpose combinations, and general `alpha`/`beta`;
//! * **determinism** — the dispatched kernel (AVX2 where the host has it)
//!   is *bitwise* identical to the generic kernel on the same inputs;
//! * **packing** — `pack_a_block`/`pack_b_block` are lossless: unpacking a
//!   panel reproduces `alpha·op(A)` / `op(B)` exactly, with zero padding in
//!   the strip remainders.

use mako_linalg::microkernel::{
    gemm_with_kernel, pack_a_block, pack_b_block, selected_kernel, View, KC, MR, NR,
};
use mako_linalg::{gemm_naive, gemm_tiled, KernelId, Matrix, Transpose};
use proptest::prelude::*;

fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut s = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

fn op_dims(rows: usize, cols: usize, t: Transpose) -> (usize, usize) {
    match t {
        Transpose::No => (rows, cols),
        Transpose::Yes => (cols, rows),
    }
}

fn transpose_of(yes: bool) -> Transpose {
    if yes {
        Transpose::Yes
    } else {
        Transpose::No
    }
}

/// Element of `op(M)` computed directly from the dense storage.
fn op_at(m: &Matrix, t: Transpose, i: usize, j: usize) -> f64 {
    match t {
        Transpose::No => m[(i, j)],
        Transpose::Yes => m[(j, i)],
    }
}

proptest! {
    /// Engine vs the triple-loop oracle: arbitrary shapes (edge tiles
    /// smaller than MR×NR included via the 1.. lower bound), all four
    /// transpose combinations, nontrivial alpha and beta.
    #[test]
    fn engine_matches_naive(
        m in 1usize..33,
        k in 1usize..49,
        n in 1usize..33,
        ta in any::<bool>(),
        tb in any::<bool>(),
        alpha in -2.0f64..2.0,
        beta in -1.5f64..1.5,
        seed in 1u64..1_000_000,
    ) {
        let (ta, tb) = (transpose_of(ta), transpose_of(tb));
        let (ar, ac) = op_dims(m, k, ta);
        let (br, bc) = op_dims(k, n, tb);
        let a = mat(ar, ac, seed);
        let b = mat(br, bc, seed.wrapping_add(1));
        let c0 = mat(m, n, seed.wrapping_add(2));

        let mut want = c0.clone();
        gemm_naive(alpha, &a, ta, &b, tb, beta, &mut want);
        let mut got = c0.clone();
        gemm_tiled(alpha, &a, ta, &b, tb, beta, &mut got);

        // Different summation grouping ⇒ 1-ulp-scale drift, bounded by the
        // usual k·eps·|a|·|b| envelope (inputs and alpha are O(1)).
        let tol = 2.0 * (k as f64) * f64::EPSILON * (1.0 + alpha.abs());
        for (w, g) in want.as_slice().iter().zip(got.as_slice()) {
            prop_assert!((w - g).abs() <= tol, "naive {w} vs engine {g} (tol {tol:.3e})");
        }
    }

    /// The dispatched kernel must be BITWISE identical to the generic
    /// kernel — the cross-kernel half of the determinism contract. (On a
    /// host without AVX2 both sides run the generic kernel and the test is
    /// trivially true.)
    #[test]
    fn generic_vs_dispatched_bitwise(
        m in 1usize..41,
        k in 1usize..65,
        n in 1usize..41,
        ta in any::<bool>(),
        tb in any::<bool>(),
        alpha in -2.0f64..2.0,
        beta in -1.5f64..1.5,
        seed in 1u64..1_000_000,
    ) {
        let (ta, tb) = (transpose_of(ta), transpose_of(tb));
        let (ar, ac) = op_dims(m, k, ta);
        let (br, bc) = op_dims(k, n, tb);
        let a = mat(ar, ac, seed);
        let b = mat(br, bc, seed.wrapping_add(1));
        let c0 = mat(m, n, seed.wrapping_add(2));

        let mut generic = c0.clone();
        prop_assert!(gemm_with_kernel(KernelId::Generic, alpha, &a, ta, &b, tb, beta, &mut generic));
        let mut dispatched = c0.clone();
        prop_assert!(gemm_with_kernel(selected_kernel(), alpha, &a, ta, &b, tb, beta, &mut dispatched));

        for (x, y) in generic.as_slice().iter().zip(dispatched.as_slice()) {
            prop_assert!(x.to_bits() == y.to_bits(), "generic {} vs dispatched {}", x, y);
        }
    }

    /// Packed A panels round-trip: strip s, depth p, lane i holds
    /// `alpha·op(A)[r0 + s·MR + i, p]`, zero in the padding lanes.
    #[test]
    fn pack_a_round_trip(
        rows in 1usize..23,
        depth in 1usize..31,
        ta in any::<bool>(),
        alpha in -2.0f64..2.0,
        seed in 1u64..1_000_000,
    ) {
        let ta = transpose_of(ta);
        let (ar, ac) = op_dims(rows, depth, ta);
        let a = mat(ar, ac, seed);
        let strips = rows.div_ceil(MR);
        let mut packed = vec![f64::NAN; strips * MR * depth];
        pack_a_block(&mut packed, &View::of(&a, ta), 0..rows, 0..depth, alpha);

        for s in 0..strips {
            for p in 0..depth {
                for i in 0..MR {
                    let got = packed[s * MR * depth + p * MR + i];
                    let r = s * MR + i;
                    let want = if r < rows { alpha * op_at(&a, ta, r, p) } else { 0.0 };
                    prop_assert!(got.to_bits() == want.to_bits(),
                        "strip {} lane {} depth {}: packed {} vs source {}", s, i, p, got, want);
                }
            }
        }
    }

    /// Packed B panels round-trip: strip t, depth p, lane j holds
    /// `op(B)[p, j0 + t·NR + j]`, zero in the padding lanes.
    #[test]
    fn pack_b_round_trip(
        depth in 1usize..31,
        cols in 1usize..37,
        tb in any::<bool>(),
        seed in 1u64..1_000_000,
    ) {
        let tb = transpose_of(tb);
        let (br, bc) = op_dims(depth, cols, tb);
        let b = mat(br, bc, seed);
        let strips = cols.div_ceil(NR);
        let mut packed = vec![f64::NAN; strips * NR * depth];
        pack_b_block(&mut packed, &View::of(&b, tb), 0..depth, 0..cols);

        for t in 0..strips {
            for p in 0..depth {
                for j in 0..NR {
                    let got = packed[t * NR * depth + p * NR + j];
                    let col = t * NR + j;
                    let want = if col < cols { op_at(&b, tb, p, col) } else { 0.0 };
                    prop_assert!(got.to_bits() == want.to_bits(),
                        "strip {} lane {} depth {}: packed {} vs source {}", t, j, p, got, want);
                }
            }
        }
    }
}

/// Deterministic spot-checks at shapes chosen to hit every driver edge:
/// sub-tile, exact-tile, one-past-tile, and multi-panel K.
#[test]
fn engine_matches_naive_at_blocking_boundaries() {
    let shapes = [
        (1, 1, 1),
        (MR - 1, 3, NR - 1),
        (MR, KC, NR),
        (MR + 1, KC + 1, NR + 1),
        (2 * MR, 2 * KC + 7, 3 * NR),
    ];
    for &(m, k, n) in &shapes {
        let a = mat(m, k, 7);
        let b = mat(k, n, 8);
        let mut want = mat(m, n, 9);
        let mut got = want.clone();
        gemm_naive(1.0, &a, Transpose::No, &b, Transpose::No, 1.0, &mut want);
        gemm_tiled(1.0, &a, Transpose::No, &b, Transpose::No, 1.0, &mut got);
        let tol = 4.0 * (k as f64) * f64::EPSILON;
        for (w, g) in want.as_slice().iter().zip(got.as_slice()) {
            assert!((w - g).abs() <= tol, "({m},{k},{n}): naive {w} vs engine {g}");
        }
    }
}
