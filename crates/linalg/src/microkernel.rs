//! Packed-tile GEMM microkernel engine (BLIS/Goto 5-loop scheme).
//!
//! This module is the host-side analogue of the paper's thesis applied to the
//! CPU: every hot contraction becomes a dense register-tile matmul over
//! *packed* operand panels, driven by a fixed cache-blocking schedule and an
//! `MR × NR` microkernel selected once at startup (AVX2 on capable `x86_64`
//! hosts, an unrolled generic-Rust kernel everywhere else).
//!
//! # Blocking scheme
//!
//! The classic five loops around the microkernel, with parameters chosen for
//! commodity L1/L2/L3 sizes:
//!
//! ```text
//! Loop 5  jc over N in steps of NC (=512)   — B column panel        (L3)
//! Loop 4  pc over K in steps of KC (=256)   — pack B[pc, jc] K-panel (L2)
//! Loop 3  ic over M in steps of MC (=128)   — pack A[ic, pc] block   (L1)
//! Loop 2  jr over NC in steps of NR (=8)    — B micro-panel strip
//! Loop 1  ir over MC in steps of MR (=4)    — A micro-panel strip
//! Loop 0  microkernel: MR×NR register tile over the KC depth
//! ```
//!
//! # Packed panel layout
//!
//! `pack_a_block` stores `op(A)` (with `alpha` folded in) as row-strips of
//! height `MR`, each strip K-major: element `(p, i)` of strip `s` lives at
//! `s·(MR·kc) + p·MR + i` and holds `alpha · op(A)[r0 + s·MR + i, pc + p]`.
//! `pack_b_block` stores `op(B)` as column-strips of width `NR`, each strip
//! K-major: element `(p, j)` of strip `t` lives at `t·(NR·kc) + p·NR + j` and
//! holds `op(B)[pc + p, jc + t·NR + j]`. Edge strips (`m % MR`, `n % NR`) are
//! zero-padded so the microkernel always runs full-width; padded lanes are
//! discarded at writeback.
//!
//! # Determinism contract
//!
//! Results are **bitwise identical** across thread counts and across kernel
//! choices at the same `(MR, NR, KC)`:
//!
//! * Each output element `C[i,j]` is produced by a private accumulator chain
//!   `acc += a[i,p] * b[p,j]` in strictly ascending `p` within a K-panel —
//!   SIMD lanes hold *distinct* output columns, so vector width never changes
//!   any element's operation sequence and no horizontal sums exist.
//! * Both kernels use separate multiply-then-add (never FMA): a fused
//!   multiply-add rounds once where mul+add rounds twice, so mixing them
//!   would break generic-vs-AVX2 bitwise identity.
//! * K-panels are accumulated into `C` in ascending `pc` order; the panel
//!   boundaries (`KC`) are compile-time constants, so the grouping of the
//!   reduction is independent of shape, threads, and kernel.
//! * Row-band parallelism (see [`crate::gemm::gemm_par`]) only partitions
//!   which *elements* a thread owns, never the per-element sequence.
//!
//! # Dispatch
//!
//! [`selected_kernel`] probes `is_x86_feature_detected!("avx2")` once (cached
//! in a `OnceLock`) and emits a `kernel.dispatch` trace instant. The choice
//! can be overridden with `MAKO_KERNEL=generic|avx2`; requesting `avx2` on a
//! host without it falls back to generic (recorded in the dispatch reason).

// Tile and band ABIs are inherently wide (pointer, stride, two panels,
// depth, tile extent, scale): grouping them into structs would add packing
// overhead to the hottest call boundary in the crate for no clarity gain.
#![allow(clippy::too_many_arguments)]

use crate::gemm::Transpose;
use crate::Matrix;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Microkernel tile height (rows of C per register tile).
pub const MR: usize = 4;
/// Microkernel tile width (columns of C per register tile).
pub const NR: usize = 8;
/// K-panel depth (Loop 4 step): bounds the reduction chunk accumulated per
/// writeback, and is therefore part of the determinism contract.
pub const KC: usize = 256;
/// Row-block height (Loop 3 step); also the row-band granule of `gemm_par`.
pub const MC: usize = 128;
/// Column-panel width (Loop 5 step).
pub const NC: usize = 512;
/// Largest `m·n` output routed to the pack-free direct path (a perf
/// heuristic only: for `k ≤ KC` the direct path is bitwise-identical to the
/// packed one — see [`small_direct_offset`] — so moving this threshold can
/// never change results). Sized so every ERI-transform shape of the quartet
/// pipeline (`nsph_pair × nherm` up to `9 × 10` for d-class brakets) skips
/// the thread-local packing round-trip.
const SMALL_MN: usize = 4 * MR * NR;

/// Which microkernel implementation the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelId {
    /// Portable unrolled Rust kernel (autovectorizes; the bitwise reference).
    Generic,
    /// `x86_64` AVX2 kernel (`_mm256_mul_pd` + `_mm256_add_pd`, no FMA).
    Avx2,
}

impl KernelId {
    /// Stable lowercase name (`"generic"` / `"avx2"`).
    pub fn name(self) -> &'static str {
        match self {
            KernelId::Generic => "generic",
            KernelId::Avx2 => "avx2",
        }
    }
}

/// Resolve the kernel choice from an optional `MAKO_KERNEL` override and the
/// host's AVX2 capability. Pure so the policy is unit-testable; returns the
/// choice and a human-readable reason for the `kernel.dispatch` event.
pub fn choose_kernel(env_override: Option<&str>, avx2_available: bool) -> (KernelId, &'static str) {
    match env_override {
        Some("generic") => (KernelId::Generic, "MAKO_KERNEL=generic override"),
        Some("avx2") => {
            if avx2_available {
                (KernelId::Avx2, "MAKO_KERNEL=avx2 override")
            } else {
                (KernelId::Generic, "MAKO_KERNEL=avx2 requested but host lacks avx2")
            }
        }
        Some(_) => {
            if avx2_available {
                (KernelId::Avx2, "unknown MAKO_KERNEL value ignored; detected avx2")
            } else {
                (KernelId::Generic, "unknown MAKO_KERNEL value ignored; no avx2")
            }
        }
        None => {
            if avx2_available {
                (KernelId::Avx2, "detected avx2")
            } else {
                (KernelId::Generic, "no avx2 on host")
            }
        }
    }
}

fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The kernel the engine dispatches to, selected once per process.
pub fn selected_kernel() -> KernelId {
    static SELECTED: OnceLock<KernelId> = OnceLock::new();
    *SELECTED.get_or_init(|| {
        let over = std::env::var("MAKO_KERNEL").ok();
        let avx2 = avx2_available();
        let (id, reason) = choose_kernel(over.as_deref(), avx2);
        mako_trace::instant(
            "kernel",
            "dispatch",
            vec![
                mako_trace::field("kernel", id.name()),
                mako_trace::field("avx2_available", avx2),
                mako_trace::field("reason", reason),
            ],
        );
        id
    })
}

/// Name of the dispatched kernel (`"generic"` / `"avx2"`).
pub fn kernel_name() -> &'static str {
    selected_kernel().name()
}

// ---------------------------------------------------------------------------
// Operand views
// ---------------------------------------------------------------------------

/// A borrowed row-major operand with an optional logical transpose.
///
/// `rows`/`cols` are the *logical* (post-transpose) dimensions: `at(i, j)`
/// always reads `op(A)[i, j]`.
#[derive(Clone, Copy)]
pub struct View<'a> {
    data: &'a [f64],
    rows: usize,
    cols: usize,
    trans: bool,
}

impl<'a> View<'a> {
    /// View a raw row-major `stored_rows × stored_cols` slice, optionally
    /// transposed. Panics if the slice is too short.
    pub fn new(data: &'a [f64], stored_rows: usize, stored_cols: usize, t: Transpose) -> View<'a> {
        assert!(data.len() >= stored_rows * stored_cols, "view buffer too short");
        match t {
            Transpose::No => View {
                data,
                rows: stored_rows,
                cols: stored_cols,
                trans: false,
            },
            Transpose::Yes => View {
                data,
                rows: stored_cols,
                cols: stored_rows,
                trans: true,
            },
        }
    }

    /// View of `op(m)`.
    pub fn of(m: &'a Matrix, t: Transpose) -> View<'a> {
        View::new(m.as_slice(), m.rows(), m.cols(), t)
    }

    /// Logical row count of `op(A)`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count of `op(A)`.
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline(always)]
    fn at(&self, i: usize, j: usize) -> f64 {
        if self.trans {
            self.data[j * self.rows + i]
        } else {
            self.data[i * self.cols + j]
        }
    }
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// Rounded-up strip count times strip stride: packed length for an `h`-row
/// (`w`-col) block at depth `kc`.
fn packed_len(span: usize, strip: usize, kc: usize) -> usize {
    span.div_ceil(strip) * strip * kc
}

/// Pack the block `op(A)[rows, depth]`, scaled by `alpha`, into MR-high
/// K-major strips (layout documented at module level). `out` must hold at
/// least [`packed_len`]`(rows.len(), MR, depth.len())` elements; edge rows
/// are zero-padded.
pub fn pack_a_block(
    out: &mut [f64],
    a: &View<'_>,
    rows: std::ops::Range<usize>,
    depth: std::ops::Range<usize>,
    alpha: f64,
) {
    let mut dst = 0;
    let mut r0 = rows.start;
    while r0 < rows.end {
        let h = MR.min(rows.end - r0);
        for p in depth.clone() {
            for i in 0..MR {
                out[dst] = if i < h { alpha * a.at(r0 + i, p) } else { 0.0 };
                dst += 1;
            }
        }
        r0 += MR;
    }
}

/// Pack the block `op(B)[depth, cols]` into NR-wide K-major strips (layout
/// documented at module level). `out` must hold at least
/// [`packed_len`]`(cols.len(), NR, depth.len())` elements; edge columns are
/// zero-padded.
pub fn pack_b_block(
    out: &mut [f64],
    b: &View<'_>,
    depth: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) {
    let mut dst = 0;
    let mut j0 = cols.start;
    while j0 < cols.end {
        let w = NR.min(cols.end - j0);
        if !b.trans && w == NR {
            // Contiguous fast path: rows of op(B) are stored rows.
            for p in depth.clone() {
                let src = &b.data[p * b.cols + j0..p * b.cols + j0 + NR];
                out[dst..dst + NR].copy_from_slice(src);
                dst += NR;
            }
        } else {
            for p in depth.clone() {
                for j in 0..NR {
                    out[dst] = if j < w { b.at(p, j0 + j) } else { 0.0 };
                    dst += 1;
                }
            }
        }
        j0 += NR;
    }
}

// ---------------------------------------------------------------------------
// Microkernels
// ---------------------------------------------------------------------------

/// Accumulation mode for one engine invocation.
#[derive(Clone, Copy)]
enum Acc {
    /// `C[i,j] += scale · Σ_p a·b` with an f64 accumulator per element.
    F64 {
        /// Writeback factor (1.0 for plain GEMM).
        scale: f64,
    },
    /// `C[i,j] += descale · f64(Σ_p f32(a·b))` — emulates tensor-core f32
    /// accumulation: each product is rounded to f32, summed in f32, widened
    /// once at writeback.
    F32 {
        /// Dequantization factor applied at writeback.
        descale: f64,
    },
}

/// One microkernel implementation: an `MR × NR` register tile at depth `kc`.
///
/// # Safety contract (both methods)
///
/// * `apanel` points at `kc·MR` packed f64 (one A strip), `bpanel` at
///   `kc·NR` packed f64 (one B strip).
/// * `c` points at the tile's top-left element of a row-major buffer with
///   row stride `ldc`; `mr ≤ MR` rows and `nr ≤ NR` columns are writable.
trait Kernel {
    /// f64-accumulate tile: `c += scale · (A_strip · B_strip)`.
    unsafe fn tile_f64(
        c: *mut f64,
        ldc: usize,
        apanel: *const f64,
        bpanel: *const f64,
        kc: usize,
        mr: usize,
        nr: usize,
        scale: f64,
    );

    /// f32-accumulate tile: `c += descale · f64(acc_f32)` where
    /// `acc_f32 += f32(a·b)` per element in ascending `p`.
    unsafe fn tile_f32(
        c: *mut f64,
        ldc: usize,
        apanel: *const f64,
        bpanel: *const f64,
        kc: usize,
        mr: usize,
        nr: usize,
        descale: f64,
    );
}

/// Portable unrolled kernel. The inner loops are over compile-time `MR`/`NR`
/// bounds so LLVM autovectorizes them; IEEE semantics make any lane width
/// produce the same bits because each accumulator is a distinct C element.
struct GenericKernel;

impl Kernel for GenericKernel {
    unsafe fn tile_f64(
        c: *mut f64,
        ldc: usize,
        apanel: *const f64,
        bpanel: *const f64,
        kc: usize,
        mr: usize,
        nr: usize,
        scale: f64,
    ) {
        let mut acc = [[0.0f64; NR]; MR];
        for p in 0..kc {
            let ap = apanel.add(p * MR);
            let bp = bpanel.add(p * NR);
            for (i, row) in acc.iter_mut().enumerate() {
                let ai = *ap.add(i);
                for (j, aij) in row.iter_mut().enumerate() {
                    // Deliberately mul-then-add (two roundings, never FMA):
                    // part of the cross-kernel bitwise-identity contract.
                    *aij += ai * *bp.add(j);
                }
            }
        }
        for (i, row) in acc.iter().enumerate().take(mr) {
            for (j, &v) in row.iter().enumerate().take(nr) {
                *c.add(i * ldc + j) += v * scale;
            }
        }
    }

    unsafe fn tile_f32(
        c: *mut f64,
        ldc: usize,
        apanel: *const f64,
        bpanel: *const f64,
        kc: usize,
        mr: usize,
        nr: usize,
        descale: f64,
    ) {
        let mut acc = [[0.0f32; NR]; MR];
        for p in 0..kc {
            let ap = apanel.add(p * MR);
            let bp = bpanel.add(p * NR);
            for (i, row) in acc.iter_mut().enumerate() {
                let ai = *ap.add(i);
                for (j, aij) in row.iter_mut().enumerate() {
                    *aij += (ai * *bp.add(j)) as f32;
                }
            }
        }
        for (i, row) in acc.iter().enumerate().take(mr) {
            for (j, &v) in row.iter().enumerate().take(nr) {
                *c.add(i * ldc + j) += v as f64 * descale;
            }
        }
    }
}

/// AVX2 kernel: 4 rows × two 4-wide f64 accumulators. Uses separate
/// `_mm256_mul_pd`/`_mm256_add_pd` (never `_mm256_fmadd_pd`) so its bits
/// match [`GenericKernel`] exactly — see the module-level determinism
/// contract.
#[cfg(target_arch = "x86_64")]
struct Avx2Kernel;

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{MR, NR};
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn tile_f64_avx2(
        c: *mut f64,
        ldc: usize,
        apanel: *const f64,
        bpanel: *const f64,
        kc: usize,
        mr: usize,
        nr: usize,
        scale: f64,
    ) {
        let zero = _mm256_setzero_pd();
        let mut acc: [[__m256d; 2]; MR] = [[zero; 2]; MR];
        for p in 0..kc {
            let b0 = _mm256_loadu_pd(bpanel.add(p * NR));
            let b1 = _mm256_loadu_pd(bpanel.add(p * NR + 4));
            let ap = apanel.add(p * MR);
            // Manually unrolled over MR so each accumulator stays in a
            // register. mul + add, never fmadd (bitwise contract).
            for (i, row) in acc.iter_mut().enumerate() {
                let ai = _mm256_set1_pd(*ap.add(i));
                row[0] = _mm256_add_pd(row[0], _mm256_mul_pd(ai, b0));
                row[1] = _mm256_add_pd(row[1], _mm256_mul_pd(ai, b1));
            }
        }
        if mr == MR && nr == NR {
            let sv = _mm256_set1_pd(scale);
            for (i, row) in acc.iter().enumerate() {
                let p0 = c.add(i * ldc);
                let p1 = c.add(i * ldc + 4);
                _mm256_storeu_pd(
                    p0,
                    _mm256_add_pd(_mm256_loadu_pd(p0), _mm256_mul_pd(row[0], sv)),
                );
                _mm256_storeu_pd(
                    p1,
                    _mm256_add_pd(_mm256_loadu_pd(p1), _mm256_mul_pd(row[1], sv)),
                );
            }
        } else {
            let mut spill = [0.0f64; NR];
            for (i, row) in acc.iter().enumerate().take(mr) {
                _mm256_storeu_pd(spill.as_mut_ptr(), row[0]);
                _mm256_storeu_pd(spill.as_mut_ptr().add(4), row[1]);
                for (j, &v) in spill.iter().enumerate().take(nr) {
                    *c.add(i * ldc + j) += v * scale;
                }
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn tile_f32_avx2(
        c: *mut f64,
        ldc: usize,
        apanel: *const f64,
        bpanel: *const f64,
        kc: usize,
        mr: usize,
        nr: usize,
        descale: f64,
    ) {
        let zero = _mm_setzero_ps();
        let mut acc: [[__m128; 2]; MR] = [[zero; 2]; MR];
        for p in 0..kc {
            let b0 = _mm256_loadu_pd(bpanel.add(p * NR));
            let b1 = _mm256_loadu_pd(bpanel.add(p * NR + 4));
            let ap = apanel.add(p * MR);
            for (i, row) in acc.iter_mut().enumerate() {
                let ai = _mm256_set1_pd(*ap.add(i));
                // cvtpd_ps is round-to-nearest-even, identical to `as f32`.
                row[0] = _mm_add_ps(row[0], _mm256_cvtpd_ps(_mm256_mul_pd(ai, b0)));
                row[1] = _mm_add_ps(row[1], _mm256_cvtpd_ps(_mm256_mul_pd(ai, b1)));
            }
        }
        let mut spill = [0.0f32; NR];
        for (i, row) in acc.iter().enumerate().take(mr) {
            _mm_storeu_ps(spill.as_mut_ptr(), row[0]);
            _mm_storeu_ps(spill.as_mut_ptr().add(4), row[1]);
            for (j, &v) in spill.iter().enumerate().take(nr) {
                *c.add(i * ldc + j) += v as f64 * descale;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
impl Kernel for Avx2Kernel {
    unsafe fn tile_f64(
        c: *mut f64,
        ldc: usize,
        apanel: *const f64,
        bpanel: *const f64,
        kc: usize,
        mr: usize,
        nr: usize,
        scale: f64,
    ) {
        avx2::tile_f64_avx2(c, ldc, apanel, bpanel, kc, mr, nr, scale);
    }

    unsafe fn tile_f32(
        c: *mut f64,
        ldc: usize,
        apanel: *const f64,
        bpanel: *const f64,
        kc: usize,
        mr: usize,
        nr: usize,
        descale: f64,
    ) {
        avx2::tile_f32_avx2(c, ldc, apanel, bpanel, kc, mr, nr, descale);
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

thread_local! {
    static SCRATCH: RefCell<PackScratch> = const {
        RefCell::new(PackScratch {
            apack: Vec::new(),
            bpack: Vec::new(),
        })
    };
}

struct PackScratch {
    apack: Vec<f64>,
    bpack: Vec<f64>,
}

fn ensure_len(v: &mut Vec<f64>, len: usize) {
    if v.len() < len {
        v.resize(len, 0.0);
    }
}

/// Running totals for the sampled `gemm.pack` / `gemm.microkernel` counters.
static PACKS: AtomicU64 = AtomicU64::new(0);
static TILES: AtomicU64 = AtomicU64::new(0);
static CALLS: AtomicU64 = AtomicU64::new(0);

/// Emit the pack/tile counters on a sampled cadence (every 1024th engine
/// call) so tracing the quartet hot loop does not flood the ring buffer.
fn note_counters(packs: u64, tiles: u64) {
    if !mako_trace::enabled() {
        return;
    }
    let p = PACKS.fetch_add(packs, Ordering::Relaxed) + packs;
    let t = TILES.fetch_add(tiles, Ordering::Relaxed) + tiles;
    let calls = CALLS.fetch_add(1, Ordering::Relaxed);
    if calls & 1023 == 0 {
        mako_trace::counter("gemm", "pack", p as f64);
        mako_trace::counter("gemm", "microkernel", t as f64);
    }
}

/// The 5-loop blocked driver over a row band `[row0, row0 + m_band)` of the
/// output. `c` points at the band's first row (row stride `ldc`).
#[allow(clippy::too_many_arguments)]
fn run_band<K: Kernel>(
    a: &View<'_>,
    b: &View<'_>,
    c: &mut [f64],
    ldc: usize,
    row0: usize,
    m_band: usize,
    alpha: f64,
    mode: Acc,
) {
    let n = b.cols();
    let k = a.cols();
    if m_band == 0 || n == 0 || k == 0 {
        return;
    }
    if k <= KC && m_band * n <= SMALL_MN {
        small_direct_offset(a, b, c, ldc, row0, m_band, n, k, alpha, mode);
        note_counters(0, 1);
        return;
    }

    let mut packs = 0u64;
    let mut tiles = 0u64;
    SCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        let PackScratch { apack, bpack } = &mut *s;
        ensure_len(apack, packed_len(MC.min(m_band), MR, KC.min(k)));
        ensure_len(bpack, packed_len(NC.min(n), NR, KC.min(k)));

        let cptr = c.as_mut_ptr();
        let mut jc = 0;
        while jc < n {
            let nc_w = NC.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kc_w = KC.min(k - pc);
                pack_b_block(bpack, b, pc..pc + kc_w, jc..jc + nc_w);
                packs += 1;
                let mut ic = 0;
                while ic < m_band {
                    let mc_h = MC.min(m_band - ic);
                    pack_a_block(
                        apack,
                        a,
                        row0 + ic..row0 + ic + mc_h,
                        pc..pc + kc_w,
                        alpha,
                    );
                    packs += 1;
                    let mut jr = 0;
                    while jr < nc_w {
                        let nr_w = NR.min(nc_w - jr);
                        let bpanel = &bpack[(jr / NR) * NR * kc_w..];
                        let mut ir = 0;
                        while ir < mc_h {
                            let mr_h = MR.min(mc_h - ir);
                            let apanel = &apack[(ir / MR) * MR * kc_w..];
                            // SAFETY: panels sized by ensure_len and fully
                            // written by the pack calls above; the tile's
                            // mr_h × nr_w window lies inside the band slice.
                            unsafe {
                                let ct = cptr.add((ic + ir) * ldc + jc + jr);
                                match mode {
                                    Acc::F64 { scale } => K::tile_f64(
                                        ct,
                                        ldc,
                                        apanel.as_ptr(),
                                        bpanel.as_ptr(),
                                        kc_w,
                                        mr_h,
                                        nr_w,
                                        scale,
                                    ),
                                    Acc::F32 { descale } => K::tile_f32(
                                        ct,
                                        ldc,
                                        apanel.as_ptr(),
                                        bpanel.as_ptr(),
                                        kc_w,
                                        mr_h,
                                        nr_w,
                                        descale,
                                    ),
                                }
                            }
                            tiles += 1;
                            ir += MR;
                        }
                        jr += NR;
                    }
                    ic += MC;
                }
                pc += KC;
            }
            jc += NC;
        }
    });
    note_counters(packs, tiles);
}

/// Direct (pack-free) path for small outputs (`m·n ≤ SMALL_MN`), with the
/// band's row offset applied to the A reads.
///
/// Bitwise-identical to the packed path for any shape with `k ≤ KC`: alpha
/// folding, ascending-`p` per-element accumulation, and single writeback are
/// the same operation sequence — only the staging differs. Shared by both
/// kernels, so it cannot break cross-kernel identity either.
#[allow(clippy::too_many_arguments)]
fn small_direct_offset(
    a: &View<'_>,
    b: &View<'_>,
    c: &mut [f64],
    ldc: usize,
    row0: usize,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    mode: Acc,
) {
    match mode {
        Acc::F64 { scale } => {
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f64;
                    for p in 0..k {
                        acc += (alpha * a.at(row0 + i, p)) * b.at(p, j);
                    }
                    c[i * ldc + j] += acc * scale;
                }
            }
        }
        Acc::F32 { descale } => {
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += ((alpha * a.at(row0 + i, p)) * b.at(p, j)) as f32;
                    }
                    c[i * ldc + j] += acc as f64 * descale;
                }
            }
        }
    }
}

/// Dispatch `run_band` to the selected kernel.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_band_dispatch(
    a: &View<'_>,
    b: &View<'_>,
    c: &mut [f64],
    ldc: usize,
    row0: usize,
    m_band: usize,
    alpha: f64,
    scale_f64: f64,
) {
    let mode = Acc::F64 { scale: scale_f64 };
    match selected_kernel() {
        KernelId::Generic => run_band::<GenericKernel>(a, b, c, ldc, row0, m_band, alpha, mode),
        #[cfg(target_arch = "x86_64")]
        KernelId::Avx2 => run_band::<Avx2Kernel>(a, b, c, ldc, row0, m_band, alpha, mode),
        #[cfg(not(target_arch = "x86_64"))]
        KernelId::Avx2 => run_band::<GenericKernel>(a, b, c, ldc, row0, m_band, alpha, mode),
    }
}

/// Full-matrix engine entry: `C += op(A)·op(B)` with `alpha` folded into the
/// packed A panels (bit-compatible with multiplying each A element first).
/// `beta` pre-scaling is the caller's job (see [`crate::gemm::gemm_tiled`]).
pub(crate) fn gemm_engine(
    alpha: f64,
    a: View<'_>,
    b: View<'_>,
    c: &mut [f64],
    ldc: usize,
) {
    let m = a.rows();
    run_band_dispatch(&a, &b, c, ldc, 0, m, alpha, 1.0);
}

/// Quantized-emulation engine entry over raw slices (operands are already
/// rounded by the caller): `C += descale · op_acc(A·op(B))` where the
/// accumulator is f32 (`fp32_acc`) or f64 per element, K-ascending.
///
/// `a` is row-major `m × k`; `b` is row-major `k × n` (`tb == No`) or
/// `n × k` (`tb == Yes`); `c` is row-major `m × n`.
///
/// For `k ≤ KC` (every ERI transform shape) the f32 path reproduces, bit for
/// bit, a scalar `acc_f32 += (a·b) as f32` loop followed by
/// `c += acc as f64 · descale` — the pre-engine `gemm_rounded` semantics.
#[allow(clippy::too_many_arguments)]
pub fn gemm_rounded_engine(
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    b: &[f64],
    tb: Transpose,
    fp32_acc: bool,
    descale: f64,
    c: &mut [f64],
) {
    assert!(a.len() >= m * k, "gemm_rounded_engine: A buffer too short");
    assert!(c.len() >= m * n, "gemm_rounded_engine: C buffer too short");
    if k <= KC && m * n <= SMALL_MN {
        // Raw-slice edition of `small_direct_offset` for the quartet hot
        // loop: same per-element ascending-`p` accumulation and single
        // writeback (so bit-identical to the packed path — see there), but
        // without the `View` indirection or the dispatch plumbing, which for
        // the s/p-class 1×k×1..4 transforms costs more than the math.
        match tb {
            Transpose::Yes if b.len() < n * k => {
                panic!("gemm_rounded_engine: B buffer too short")
            }
            Transpose::No if b.len() < k * n => {
                panic!("gemm_rounded_engine: B buffer too short")
            }
            _ => {}
        }
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                if fp32_acc {
                    let mut acc = 0.0f32;
                    match tb {
                        Transpose::No => {
                            for (p, &ax) in arow.iter().enumerate() {
                                acc += (ax * b[p * n + j]) as f32;
                            }
                        }
                        Transpose::Yes => {
                            let bcol = &b[j * k..(j + 1) * k];
                            for (&ax, &bx) in arow.iter().zip(bcol) {
                                acc += (ax * bx) as f32;
                            }
                        }
                    }
                    c[i * n + j] += acc as f64 * descale;
                } else {
                    let mut acc = 0.0f64;
                    match tb {
                        Transpose::No => {
                            for (p, &ax) in arow.iter().enumerate() {
                                acc += ax * b[p * n + j];
                            }
                        }
                        Transpose::Yes => {
                            let bcol = &b[j * k..(j + 1) * k];
                            for (&ax, &bx) in arow.iter().zip(bcol) {
                                acc += ax * bx;
                            }
                        }
                    }
                    c[i * n + j] += acc * descale;
                }
            }
        }
        note_counters(0, 1);
        return;
    }
    let av = View::new(a, m, k, Transpose::No);
    let bv = match tb {
        Transpose::No => View::new(b, k, n, Transpose::No),
        Transpose::Yes => View::new(b, n, k, Transpose::Yes),
    };
    assert_eq!(bv.rows(), k, "gemm_rounded_engine: inner dimension mismatch");
    let mode = if fp32_acc {
        Acc::F32 { descale }
    } else {
        Acc::F64 { scale: descale }
    };
    match selected_kernel() {
        KernelId::Generic => run_band::<GenericKernel>(&av, &bv, c, n, 0, m, 1.0, mode),
        #[cfg(target_arch = "x86_64")]
        KernelId::Avx2 => run_band::<Avx2Kernel>(&av, &bv, c, n, 0, m, 1.0, mode),
        #[cfg(not(target_arch = "x86_64"))]
        KernelId::Avx2 => run_band::<GenericKernel>(&av, &bv, c, n, 0, m, 1.0, mode),
    }
}

/// Run one full GEMM with an explicitly chosen kernel — test-only hook for
/// the generic-vs-AVX2 bitwise identity suite. Returns `false` (doing
/// nothing) if the requested kernel is unavailable on this host.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with_kernel(
    id: KernelId,
    alpha: f64,
    a: &Matrix,
    ta: Transpose,
    b: &Matrix,
    tb: Transpose,
    beta: f64,
    c: &mut Matrix,
) -> bool {
    let av = View::of(a, ta);
    let bv = View::of(b, tb);
    assert_eq!(av.cols(), bv.rows(), "gemm inner dimension mismatch");
    assert_eq!(
        (c.rows(), c.cols()),
        (av.rows(), bv.cols()),
        "gemm output shape mismatch"
    );
    if beta != 1.0 {
        for x in c.as_mut_slice() {
            *x *= beta;
        }
    }
    let m = av.rows();
    let ldc = bv.cols();
    let mode = Acc::F64 { scale: 1.0 };
    match id {
        KernelId::Generic => {
            run_band::<GenericKernel>(&av, &bv, c.as_mut_slice(), ldc, 0, m, alpha, mode);
            true
        }
        KernelId::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                if avx2_available() {
                    run_band::<Avx2Kernel>(&av, &bv, c.as_mut_slice(), ldc, 0, m, alpha, mode);
                    return true;
                }
                false
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm_naive, gemm_par};

    fn deterministic(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (3, 5, 2),
        (4, 8, 8),
        (5, 9, 9),
        (9, 10, 10),
        (17, 300, 23),
        (130, 70, 90),
        (129, 257, 65),
    ];

    #[test]
    fn choose_kernel_policy() {
        assert_eq!(choose_kernel(None, true).0, KernelId::Avx2);
        assert_eq!(choose_kernel(None, false).0, KernelId::Generic);
        assert_eq!(choose_kernel(Some("generic"), true).0, KernelId::Generic);
        assert_eq!(choose_kernel(Some("avx2"), true).0, KernelId::Avx2);
        assert_eq!(choose_kernel(Some("avx2"), false).0, KernelId::Generic);
        assert_eq!(choose_kernel(Some("bogus"), true).0, KernelId::Avx2);
    }

    #[test]
    fn engine_matches_naive_all_transposes() {
        for &(m, k, n) in SHAPES {
            for &ta in &[Transpose::No, Transpose::Yes] {
                for &tb in &[Transpose::No, Transpose::Yes] {
                    let a = match ta {
                        Transpose::No => deterministic(m, k, 1),
                        Transpose::Yes => deterministic(k, m, 1),
                    };
                    let b = match tb {
                        Transpose::No => deterministic(k, n, 2),
                        Transpose::Yes => deterministic(n, k, 2),
                    };
                    let mut c1 = deterministic(m, n, 3);
                    let mut c2 = c1.clone();
                    gemm_naive(1.3, &a, ta, &b, tb, 0.7, &mut c1);
                    assert!(gemm_with_kernel(
                        KernelId::Generic,
                        1.3,
                        &a,
                        ta,
                        &b,
                        tb,
                        0.7,
                        &mut c2
                    ));
                    let d = c1.sub(&c2).max_abs();
                    let tol = 1e-13 * (k as f64).max(1.0);
                    assert!(d < tol, "({m},{k},{n}) ta={ta:?} tb={tb:?}: diff {d}");
                }
            }
        }
    }

    #[test]
    fn generic_vs_avx2_bitwise() {
        if !avx2_available() {
            return; // nothing to compare on this host
        }
        for &(m, k, n) in SHAPES {
            for &ta in &[Transpose::No, Transpose::Yes] {
                for &tb in &[Transpose::No, Transpose::Yes] {
                    let a = match ta {
                        Transpose::No => deterministic(m, k, 7),
                        Transpose::Yes => deterministic(k, m, 7),
                    };
                    let b = match tb {
                        Transpose::No => deterministic(k, n, 8),
                        Transpose::Yes => deterministic(n, k, 8),
                    };
                    let mut cg = deterministic(m, n, 9);
                    let mut cv = cg.clone();
                    assert!(gemm_with_kernel(
                        KernelId::Generic,
                        1.7,
                        &a,
                        ta,
                        &b,
                        tb,
                        0.3,
                        &mut cg
                    ));
                    assert!(gemm_with_kernel(
                        KernelId::Avx2,
                        1.7,
                        &a,
                        ta,
                        &b,
                        tb,
                        0.3,
                        &mut cv
                    ));
                    assert_eq!(
                        cg.as_slice(),
                        cv.as_slice(),
                        "bitwise mismatch at ({m},{k},{n}) ta={ta:?} tb={tb:?}"
                    );
                }
            }
        }
    }

    /// The f32-accumulation engine must reproduce the scalar pre-engine
    /// `gemm_rounded` loop bit for bit (for k ≤ KC).
    #[test]
    fn f32_engine_matches_scalar_reference_bitwise() {
        for &(m, k, n) in SHAPES {
            if k > KC {
                continue;
            }
            let a = deterministic(m, k, 40);
            let b = deterministic(k, n, 41);
            let descale = 0.037;
            let mut c_ref = deterministic(m, n, 42);
            let mut c_eng = c_ref.clone();
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += (a[(i, p)] * b[(p, j)]) as f32;
                    }
                    c_ref[(i, j)] += acc as f64 * descale;
                }
            }
            gemm_rounded_engine(
                m,
                k,
                n,
                a.as_slice(),
                b.as_slice(),
                Transpose::No,
                true,
                descale,
                c_eng.as_mut_slice(),
            );
            assert_eq!(c_ref.as_slice(), c_eng.as_slice(), "shape ({m},{k},{n})");
        }
    }

    /// f32 engine with a transposed B view must equal the engine on an
    /// explicit transposed copy, bit for bit.
    #[test]
    fn f32_engine_transposed_b_matches_copy() {
        let (m, k, n) = (9, 10, 9);
        let a = deterministic(m, k, 50);
        let bt = deterministic(n, k, 51); // stored n × k, logical op(B) = k × n
        let b_copy = bt.transpose();
        let mut c1 = Matrix::zeros(m, n);
        let mut c2 = Matrix::zeros(m, n);
        gemm_rounded_engine(
            m,
            k,
            n,
            a.as_slice(),
            bt.as_slice(),
            Transpose::Yes,
            true,
            1.25,
            c1.as_mut_slice(),
        );
        gemm_rounded_engine(
            m,
            k,
            n,
            a.as_slice(),
            b_copy.as_slice(),
            Transpose::No,
            true,
            1.25,
            c2.as_mut_slice(),
        );
        assert_eq!(c1.as_slice(), c2.as_slice());
    }

    /// Serial engine vs rayon row-band parallel GEMM: bitwise identical at
    /// every pool size (the per-element reduction order is band-invariant).
    #[test]
    fn parallel_bands_bitwise_identical() {
        let (m, k, n) = (300, 129, 200);
        let a = deterministic(m, k, 60);
        let b = deterministic(k, n, 61);
        let mut c_serial = Matrix::zeros(m, n);
        crate::gemm::gemm_tiled(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c_serial);
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let mut c_par = Matrix::zeros(m, n);
            pool.install(|| {
                gemm_par(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c_par);
            });
            assert_eq!(
                c_serial.as_slice(),
                c_par.as_slice(),
                "thread count {threads} changed bits"
            );
        }
    }

    /// Pack-then-unpack round trip: packed panels reproduce the source block
    /// exactly (and pads are exactly zero).
    #[test]
    fn pack_round_trip() {
        let a = deterministic(13, 17, 70);
        for &ta in &[Transpose::No, Transpose::Yes] {
            let v = View::of(&a, ta);
            let (rows, depth) = (1..v.rows(), 0..v.cols().min(9));
            let kc = depth.len();
            let mut buf = vec![f64::NAN; packed_len(rows.len(), MR, kc)];
            pack_a_block(&mut buf, &v, rows.clone(), depth.clone(), 2.0);
            for (s, r0) in rows.clone().step_by(MR).enumerate() {
                for p in 0..kc {
                    for i in 0..MR {
                        let got = buf[s * MR * kc + p * MR + i];
                        let want = if r0 + i < rows.end {
                            2.0 * v.at(r0 + i, depth.start + p)
                        } else {
                            0.0
                        };
                        assert_eq!(got.to_bits(), want.to_bits());
                    }
                }
            }
            let (depth_b, cols) = (0..v.rows().min(7), 1..v.cols());
            let kcb = depth_b.len();
            let mut bbuf = vec![f64::NAN; packed_len(cols.len(), NR, kcb)];
            pack_b_block(&mut bbuf, &v, depth_b.clone(), cols.clone());
            for (t, j0) in cols.clone().step_by(NR).enumerate() {
                for p in 0..kcb {
                    for j in 0..NR {
                        let got = bbuf[t * NR * kcb + p * NR + j];
                        let want = if j0 + j < cols.end {
                            v.at(depth_b.start + p, j0 + j)
                        } else {
                            0.0
                        };
                        assert_eq!(got.to_bits(), want.to_bits());
                    }
                }
            }
        }
    }
}
