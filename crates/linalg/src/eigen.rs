//! Symmetric eigensolver: Householder tridiagonalization followed by the
//! implicit-shift QL iteration.
//!
//! This is the dense diagonalization used for the Fock matrix and for Löwdin
//! orthogonalization. The implementation follows the classic EISPACK
//! `tred2`/`tql2` pair (also Numerical Recipes §11.2–11.3), written 0-indexed
//! with an explicit iteration budget.

use crate::{LinalgError, Matrix};

/// Result of [`eigh`]: `a = V diag(λ) Vᵀ` with eigenvalues ascending and
/// eigenvectors in the *columns* of `vectors`.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues sorted ascending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, column `k` pairing with `values[k]`.
    pub vectors: Matrix,
}

impl EigenDecomposition {
    /// Reconstruct `V diag(λ) Vᵀ` (used by tests and matrix functions).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        let mut scaled = self.vectors.clone();
        for j in 0..n {
            for i in 0..n {
                scaled[(i, j)] *= self.values[j];
            }
        }
        crate::gemm(&scaled, crate::Transpose::No, &self.vectors, crate::Transpose::Yes)
    }
}

/// Eigendecomposition of a real symmetric matrix.
///
/// Only the lower triangle is read. Cost is O(n³) with a small constant; the
/// QL iteration virtually always converges in ≤ 4 sweeps per eigenvalue, and
/// a budget of 64 guards against pathological input.
pub fn eigh(a: &Matrix) -> Result<EigenDecomposition, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::ShapeMismatch {
            context: "eigh requires a square matrix",
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(EigenDecomposition {
            values: vec![],
            vectors: Matrix::zeros(0, 0),
        });
    }

    let mut z = a.clone();
    z.symmetrize();
    let mut d = vec![0.0f64; n];
    let mut e = vec![0.0f64; n];
    tred2(&mut z, &mut d, &mut e);
    tql2(&mut d, &mut e, &mut z)?;

    // Sort ascending, permuting eigenvector columns.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[i].partial_cmp(&d[j]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| z[(i, order[j])]);

    Ok(EigenDecomposition { values, vectors })
}

/// Householder reduction of a real symmetric matrix to tridiagonal form,
/// accumulating the orthogonal transformation in `a`.
fn tred2(a: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let mut scale = 0.0;
            for k in 0..=l {
                scale += a[(i, k)].abs();
            }
            if scale == 0.0 {
                e[i] = a[(i, l)];
            } else {
                for k in 0..=l {
                    a[(i, k)] /= scale;
                    h += a[(i, k)] * a[(i, k)];
                }
                let f = a[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                a[(i, l)] = f - g;
                let mut f_acc = 0.0;
                for j in 0..=l {
                    a[(j, i)] = a[(i, j)] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += a[(j, k)] * a[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += a[(k, j)] * a[(i, k)];
                    }
                    e[j] = g / h;
                    f_acc += e[j] * a[(i, j)];
                }
                let hh = f_acc / (h + h);
                for j in 0..=l {
                    let f = a[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        a[(j, k)] -= f * e[k] + g * a[(i, k)];
                    }
                }
            }
        } else {
            e[i] = a[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += a[(i, k)] * a[(k, j)];
                }
                for k in 0..i {
                    a[(k, j)] -= g * a[(k, i)];
                }
            }
        }
        d[i] = a[(i, i)];
        a[(i, i)] = 1.0;
        for j in 0..i {
            a[(j, i)] = 0.0;
            a[(i, j)] = 0.0;
        }
    }
}

/// QL iteration with implicit shifts on a tridiagonal matrix, accumulating
/// eigenvectors in `z` (which enters holding the tred2 transformation).
fn tql2(d: &mut [f64], e: &mut [f64], z: &mut Matrix) -> Result<(), LinalgError> {
    let n = d.len();
    if n == 1 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // Look for a single small subdiagonal element to split the matrix.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 64 {
                return Err(LinalgError::NoConvergence { index: l });
            }
            // Form the implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(if g >= 0.0 { 1.0 } else { -1.0 }));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Recover from underflow by deflating.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gemm, Transpose};

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        m
    }

    #[test]
    fn diagonal_matrix() {
        let mut a = Matrix::zeros(4, 4);
        for (i, &v) in [3.0, -1.0, 2.0, 0.5].iter().enumerate() {
            a[(i, i)] = v;
        }
        let ed = eigh(&a).unwrap();
        assert_eq!(ed.values, vec![-1.0, 0.5, 2.0, 3.0]);
    }

    #[test]
    fn two_by_two_analytic() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let ed = eigh(&a).unwrap();
        assert!((ed.values[0] - 1.0).abs() < 1e-14);
        assert!((ed.values[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        for &n in &[1usize, 2, 3, 5, 10, 30, 60] {
            let a = random_symmetric(n, n as u64 * 7 + 1);
            let ed = eigh(&a).unwrap();
            // A ≈ V Λ Vᵀ
            let recon = ed.reconstruct();
            assert!(
                recon.sub(&a).max_abs() < 1e-10 * (1.0 + a.max_abs()),
                "n={n} reconstruction error {}",
                recon.sub(&a).max_abs()
            );
            // VᵀV = I
            let vtv = gemm(&ed.vectors, Transpose::Yes, &ed.vectors, Transpose::No);
            assert!(vtv.sub(&Matrix::identity(n)).max_abs() < 1e-12, "n={n}");
            // Eigenvalues ascending.
            for w in ed.values.windows(2) {
                assert!(w[0] <= w[1] + 1e-14);
            }
        }
    }

    #[test]
    fn eigenvalue_sum_equals_trace() {
        let a = random_symmetric(25, 99);
        let ed = eigh(&a).unwrap();
        let sum: f64 = ed.values.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-10);
    }

    #[test]
    fn degenerate_eigenvalues() {
        // I ⊗ scaled blocks: eigenvalues {1,1,1,5}.
        let mut a = Matrix::identity(4);
        a[(3, 3)] = 5.0;
        let ed = eigh(&a).unwrap();
        assert!((ed.values[0] - 1.0).abs() < 1e-14);
        assert!((ed.values[2] - 1.0).abs() < 1e-14);
        assert!((ed.values[3] - 5.0).abs() < 1e-14);
        let recon = ed.reconstruct();
        assert!(recon.sub(&a).max_abs() < 1e-12);
    }

    #[test]
    fn rejects_non_square() {
        assert!(eigh(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn empty_matrix() {
        let ed = eigh(&Matrix::zeros(0, 0)).unwrap();
        assert!(ed.values.is_empty());
    }

    #[test]
    fn rank_one_matrix() {
        // v vᵀ with v = (1,2,3): single nonzero eigenvalue |v|² = 14.
        let v = [1.0, 2.0, 3.0];
        let a = Matrix::from_fn(3, 3, |i, j| v[i] * v[j]);
        let ed = eigh(&a).unwrap();
        assert!(ed.values[0].abs() < 1e-12);
        assert!(ed.values[1].abs() < 1e-12);
        assert!((ed.values[2] - 14.0).abs() < 1e-12);
    }
}
