//! # mako-linalg
//!
//! Dense linear-algebra substrate for the Mako quantum-chemistry system,
//! implemented from scratch (no BLAS/LAPACK).
//!
//! The Mako paper rearchitects DFT so that its heavy phases are matrix
//! multiplications executed by tensor cores; the surrounding workflow still
//! needs a dense toolbox: GEMM (the host-side reference used to validate the
//! simulated-accelerator kernels), a symmetric eigensolver (Fock matrix
//! diagonalization), Cholesky factorization, and symmetric matrix functions
//! (Löwdin orthogonalization `S^{-1/2}`).
//!
//! Everything operates on the row-major [`Matrix`] type. GEMMs come in
//! naive, serial packed-tile, and Rayon-parallel flavors; the packed-tile
//! [`microkernel`] engine (BLIS-style 5-loop blocking around an `MR × NR`
//! register tile, AVX2 or generic kernel selected at startup) is also the
//! numerical executor behind the simulated tensor-core GEMMs in
//! `mako-kernels` (with operand rounding applied by the caller).

pub mod cholesky;
pub mod eigen;
pub mod funcs;
pub mod gemm;
pub mod lobpcg;
pub mod matrix;
pub mod microkernel;

pub use cholesky::{cholesky, solve_cholesky};
pub use eigen::{eigh, EigenDecomposition};
pub use funcs::{sym_func, sym_inv_sqrt, sym_inv_sqrt_diag, sym_sqrt, OrthFactor};
pub use gemm::{gemm, gemm_naive, gemm_par, gemm_tiled, Transpose};
pub use lobpcg::{lobpcg, LobpcgResult};
pub use matrix::Matrix;
pub use microkernel::{gemm_rounded_engine, kernel_name, selected_kernel, KernelId};

/// Errors surfaced by the linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible with the requested operation.
    ShapeMismatch {
        /// Description of the expectation that was violated.
        context: &'static str,
    },
    /// The QL iteration failed to converge within the iteration budget.
    NoConvergence {
        /// Eigenvalue index being worked on when the budget ran out.
        index: usize,
    },
    /// A matrix required to be positive definite was not.
    NotPositiveDefinite {
        /// Pivot index at which the failure was detected.
        pivot: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            LinalgError::NoConvergence { index } => {
                write!(f, "eigensolver failed to converge at index {index}")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix not positive definite (pivot {pivot})")
            }
        }
    }
}

impl std::error::Error for LinalgError {}
