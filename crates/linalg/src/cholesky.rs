//! Cholesky factorization and positive-definite solves.
//!
//! Used for inverting the DIIS B-matrix system and as a fast
//! positive-definiteness probe on overlap matrices.

use crate::{LinalgError, Matrix};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// Only the lower triangle of `a` is read. Fails with
/// [`LinalgError::NotPositiveDefinite`] when a pivot is non-positive.
pub fn cholesky(a: &Matrix) -> Result<Matrix, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::ShapeMismatch {
            context: "cholesky requires a square matrix",
        });
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if s <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite { pivot: i });
                }
                l[(i, j)] = s.sqrt();
            } else {
                l[(i, j)] = s / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solve `A x = b` for symmetric positive-definite `A` via Cholesky.
pub fn solve_cholesky(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let l = cholesky(a)?;
    let n = a.rows();
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            context: "solve_cholesky rhs length",
        });
    }
    // Forward substitution: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[(i, k)] * y[k];
        }
        y[i] = s / l[(i, i)];
    }
    // Back substitution: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in (i + 1)..n {
            s -= l[(k, i)] * x[k];
        }
        x[i] = s / l[(i, i)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gemm, Transpose};

    fn spd(n: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let g = Matrix::from_fn(n, n, |_, _| next());
        // GᵀG + n·I is safely positive definite.
        let mut a = gemm(&g, Transpose::Yes, &g, Transpose::No);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn factor_reconstructs() {
        for &n in &[1usize, 2, 5, 20] {
            let a = spd(n, n as u64 + 3);
            let l = cholesky(&a).unwrap();
            let llt = gemm(&l, Transpose::No, &l, Transpose::Yes);
            assert!(llt.sub(&a).max_abs() < 1e-10, "n={n}");
            // Upper triangle of L is zero.
            for i in 0..n {
                for j in (i + 1)..n {
                    assert_eq!(l[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn solve_recovers_rhs() {
        let n = 12;
        let a = spd(n, 77);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let b = a.matvec(&x_true);
        let x = solve_cholesky(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let mut a = Matrix::identity(3);
        a[(1, 1)] = -2.0;
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NotPositiveDefinite { pivot: 1 })
        ));
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(cholesky(&Matrix::zeros(2, 3)).is_err());
        let a = spd(3, 5);
        assert!(solve_cholesky(&a, &[1.0, 2.0]).is_err());
    }
}
