//! Symmetric matrix functions via eigendecomposition.
//!
//! The SCF driver needs `S^{-1/2}` (Löwdin symmetric orthogonalization) and
//! occasionally `S^{1/2}`; both are instances of applying a scalar function
//! to the eigenvalues: `f(A) = V f(Λ) Vᵀ`.

use crate::{eigh, gemm, LinalgError, Matrix, Transpose};

/// Apply a scalar function to the spectrum of a symmetric matrix:
/// `f(A) = V diag(f(λ)) Vᵀ`.
pub fn sym_func(a: &Matrix, f: impl Fn(f64) -> f64) -> Result<Matrix, LinalgError> {
    let ed = eigh(a)?;
    let n = ed.values.len();
    let mut scaled = ed.vectors.clone();
    for j in 0..n {
        let fj = f(ed.values[j]);
        for i in 0..n {
            scaled[(i, j)] *= fj;
        }
    }
    Ok(gemm(&scaled, Transpose::No, &ed.vectors, Transpose::Yes))
}

/// `A^{-1/2}` for a symmetric positive-definite matrix.
///
/// Eigenvalues below `threshold` are projected out (their inverse square
/// root set to zero) — the canonical-orthogonalization guard against
/// near-linear-dependent basis sets.
pub fn sym_inv_sqrt(a: &Matrix, threshold: f64) -> Result<Matrix, LinalgError> {
    sym_inv_sqrt_diag(a, threshold).map(|o| o.matrix)
}

/// A canonical orthogonalizer together with its linear-dependence
/// diagnostics — what [`sym_inv_sqrt`] used to discard.
#[derive(Debug, Clone)]
pub struct OrthFactor {
    /// The projected `A^{-1/2}` (identical bits to [`sym_inv_sqrt`]).
    pub matrix: Matrix,
    /// Eigenvectors dropped (eigenvalue ≤ threshold): the dimension lost to
    /// near linear dependence.
    pub n_dropped: usize,
    /// Smallest retained eigenvalue — the conditioning of the surviving
    /// basis. `+∞` when everything was dropped.
    pub smallest_kept: f64,
    /// Smallest eigenvalue overall (dropped or not).
    pub smallest: f64,
}

/// [`sym_inv_sqrt`] with linear-dependence diagnostics: how many overlap
/// eigenvectors fell below `threshold` and how well-conditioned the
/// retained space is. The returned matrix is bitwise identical to
/// `sym_inv_sqrt(a, threshold)` — callers can adopt the diagnostic form
/// without perturbing any trajectory.
pub fn sym_inv_sqrt_diag(a: &Matrix, threshold: f64) -> Result<OrthFactor, LinalgError> {
    let ed = eigh(a)?;
    let n = ed.values.len();
    let mut scaled = ed.vectors.clone();
    let mut n_dropped = 0usize;
    let mut smallest_kept = f64::INFINITY;
    let mut smallest = f64::INFINITY;
    for j in 0..n {
        let l = ed.values[j];
        smallest = smallest.min(l);
        let fj = if l > threshold {
            smallest_kept = smallest_kept.min(l);
            1.0 / l.sqrt()
        } else {
            n_dropped += 1;
            0.0
        };
        for i in 0..n {
            scaled[(i, j)] *= fj;
        }
    }
    Ok(OrthFactor {
        matrix: gemm(&scaled, Transpose::No, &ed.vectors, Transpose::Yes),
        n_dropped,
        smallest_kept,
        smallest,
    })
}

/// `A^{1/2}` for a symmetric positive-semidefinite matrix (negative
/// eigenvalues from roundoff are clamped to zero).
pub fn sym_sqrt(a: &Matrix) -> Result<Matrix, LinalgError> {
    sym_func(a, |l| if l > 0.0 { l.sqrt() } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let g = Matrix::from_fn(n, n, |_, _| next());
        let mut a = gemm(&g, Transpose::Yes, &g, Transpose::No);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn inv_sqrt_whitens() {
        let a = spd(10, 42);
        let x = sym_inv_sqrt(&a, 1e-10).unwrap();
        // X A X = I
        let xax = gemm(&gemm(&x, Transpose::No, &a, Transpose::No), Transpose::No, &x, Transpose::No);
        assert!(xax.sub(&Matrix::identity(10)).max_abs() < 1e-10);
    }

    #[test]
    fn sqrt_squares_back() {
        let a = spd(8, 7);
        let r = sym_sqrt(&a).unwrap();
        let rr = gemm(&r, Transpose::No, &r, Transpose::No);
        assert!(rr.sub(&a).max_abs() < 1e-10);
    }

    #[test]
    fn identity_function_is_identity() {
        let a = spd(6, 3);
        let same = sym_func(&a, |l| l).unwrap();
        assert!(same.sub(&a).max_abs() < 1e-10);
    }

    #[test]
    fn diag_form_is_bitwise_identical_and_counts_drops() {
        // Well-conditioned: nothing dropped, identical bits to sym_inv_sqrt.
        let a = spd(10, 42);
        let plain = sym_inv_sqrt(&a, 1e-10).unwrap();
        let diag = sym_inv_sqrt_diag(&a, 1e-10).unwrap();
        assert_eq!(plain, diag.matrix, "diagnostic form must not perturb X");
        assert_eq!(diag.n_dropped, 0);
        assert!(diag.smallest_kept > 0.0 && diag.smallest_kept.is_finite());
        assert_eq!(diag.smallest, diag.smallest_kept);

        // Rank-1: two directions dropped, the surviving eigenvalue reported.
        let v = [2.0, 0.0, 1.0];
        let r1 = Matrix::from_fn(3, 3, |i, j| v[i] * v[j]);
        let d = sym_inv_sqrt_diag(&r1, 1e-8).unwrap();
        assert_eq!(d.n_dropped, 2);
        assert!((d.smallest_kept - 5.0).abs() < 1e-10, "{}", d.smallest_kept);
        assert!(d.smallest.abs() < 1e-10);
        assert_eq!(d.matrix, sym_inv_sqrt(&r1, 1e-8).unwrap());
    }

    #[test]
    fn threshold_projects_singular_directions() {
        // Singular matrix: rank 1.
        let v = [2.0, 0.0, 1.0];
        let a = Matrix::from_fn(3, 3, |i, j| v[i] * v[j]);
        let x = sym_inv_sqrt(&a, 1e-8).unwrap();
        // X should be finite (no division by ~0).
        assert!(x.as_slice().iter().all(|v| v.is_finite()));
        // X A X equals the projector onto the nonzero eigenspace (trace 1).
        let xax = gemm(&gemm(&x, Transpose::No, &a, Transpose::No), Transpose::No, &x, Transpose::No);
        assert!((xax.trace() - 1.0).abs() < 1e-10);
    }
}
