//! Symmetric matrix functions via eigendecomposition.
//!
//! The SCF driver needs `S^{-1/2}` (Löwdin symmetric orthogonalization) and
//! occasionally `S^{1/2}`; both are instances of applying a scalar function
//! to the eigenvalues: `f(A) = V f(Λ) Vᵀ`.

use crate::{eigh, gemm, LinalgError, Matrix, Transpose};

/// Apply a scalar function to the spectrum of a symmetric matrix:
/// `f(A) = V diag(f(λ)) Vᵀ`.
pub fn sym_func(a: &Matrix, f: impl Fn(f64) -> f64) -> Result<Matrix, LinalgError> {
    let ed = eigh(a)?;
    let n = ed.values.len();
    let mut scaled = ed.vectors.clone();
    for j in 0..n {
        let fj = f(ed.values[j]);
        for i in 0..n {
            scaled[(i, j)] *= fj;
        }
    }
    Ok(gemm(&scaled, Transpose::No, &ed.vectors, Transpose::Yes))
}

/// `A^{-1/2}` for a symmetric positive-definite matrix.
///
/// Eigenvalues below `threshold` are projected out (their inverse square
/// root set to zero) — the canonical-orthogonalization guard against
/// near-linear-dependent basis sets.
pub fn sym_inv_sqrt(a: &Matrix, threshold: f64) -> Result<Matrix, LinalgError> {
    sym_func(a, |l| if l > threshold { 1.0 / l.sqrt() } else { 0.0 })
}

/// `A^{1/2}` for a symmetric positive-semidefinite matrix (negative
/// eigenvalues from roundoff are clamped to zero).
pub fn sym_sqrt(a: &Matrix) -> Result<Matrix, LinalgError> {
    sym_func(a, |l| if l > 0.0 { l.sqrt() } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let g = Matrix::from_fn(n, n, |_, _| next());
        let mut a = gemm(&g, Transpose::Yes, &g, Transpose::No);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn inv_sqrt_whitens() {
        let a = spd(10, 42);
        let x = sym_inv_sqrt(&a, 1e-10).unwrap();
        // X A X = I
        let xax = gemm(&gemm(&x, Transpose::No, &a, Transpose::No), Transpose::No, &x, Transpose::No);
        assert!(xax.sub(&Matrix::identity(10)).max_abs() < 1e-10);
    }

    #[test]
    fn sqrt_squares_back() {
        let a = spd(8, 7);
        let r = sym_sqrt(&a).unwrap();
        let rr = gemm(&r, Transpose::No, &r, Transpose::No);
        assert!(rr.sub(&a).max_abs() < 1e-10);
    }

    #[test]
    fn identity_function_is_identity() {
        let a = spd(6, 3);
        let same = sym_func(&a, |l| l).unwrap();
        assert!(same.sub(&a).max_abs() < 1e-10);
    }

    #[test]
    fn threshold_projects_singular_directions() {
        // Singular matrix: rank 1.
        let v = [2.0, 0.0, 1.0];
        let a = Matrix::from_fn(3, 3, |i, j| v[i] * v[j]);
        let x = sym_inv_sqrt(&a, 1e-8).unwrap();
        // X should be finite (no division by ~0).
        assert!(x.as_slice().iter().all(|v| v.is_finite()));
        // X A X equals the projector onto the nonzero eigenspace (trace 1).
        let xax = gemm(&gemm(&x, Transpose::No, &a, Transpose::No), Transpose::No, &x, Transpose::No);
        assert!((xax.trace() - 1.0).abs() < 1e-10);
    }
}
