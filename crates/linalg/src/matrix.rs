//! Row-major dense matrix of `f64`.

use crate::LinalgError;

/// A dense, row-major matrix of `f64`.
///
/// Element `(i, j)` lives at `data[i * cols + j]`. The type is deliberately
/// simple — a length-checked `Vec` with shape — because the performance-
/// critical paths (GEMM, eigensolver) operate on the raw slice directly.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from an existing row-major buffer. Panics if the buffer length
    /// does not equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "buffer length != rows*cols");
        Matrix { rows, cols, data }
    }

    /// Build by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Reshape in place to `rows × cols` and zero-fill, reusing the backing
    /// allocation — the scratch-reuse primitive for per-quartet hot loops.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the backing row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Elementwise sum. Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise difference. Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// `self += alpha * other`, in place. Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scale every element by `alpha`, returning a new matrix.
    pub fn scale(&self, alpha: f64) -> Matrix {
        let data = self.data.iter().map(|x| alpha * x).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scale in place.
    pub fn scale_mut(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = self.row(i);
            let mut s = 0.0;
            for (a, b) in row.iter().zip(x) {
                s += a * b;
            }
            *yi = s;
        }
        y
    }

    /// Trace (sum of diagonal). Panics if not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square());
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius inner product `tr(selfᵀ other)` — used for `E = Σ D (H+F)`.
    pub fn dot(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, x| m.max(x.abs()))
    }

    /// Whether every element is finite (no NaN/Inf). `max_abs` cannot be
    /// used for this check: `f64::max` ignores NaN operands.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Force exact symmetry by averaging with the transpose (used after
    /// numerically-symmetric builds like Fock assembly).
    pub fn symmetrize(&mut self) {
        assert!(self.is_square());
        for i in 0..self.rows {
            for j in 0..i {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// Maximum asymmetry `max |A_ij − A_ji|`.
    pub fn asymmetry(&self) -> f64 {
        assert!(self.is_square());
        let mut m = 0.0f64;
        for i in 0..self.rows {
            for j in 0..i {
                m = m.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        m
    }

    /// Copy a rectangular block of `other` into `self` at `(row0, col0)`.
    pub fn set_block(&mut self, row0: usize, col0: usize, other: &Matrix) {
        assert!(row0 + other.rows <= self.rows && col0 + other.cols <= self.cols);
        for i in 0..other.rows {
            let src = other.row(i);
            let dst =
                &mut self.data[(row0 + i) * self.cols + col0..(row0 + i) * self.cols + col0 + other.cols];
            dst.copy_from_slice(src);
        }
    }

    /// Extract the block `[row0..row0+nr) × [col0..col0+nc)`.
    pub fn block(&self, row0: usize, col0: usize, nr: usize, nc: usize) -> Matrix {
        assert!(row0 + nr <= self.rows && col0 + nc <= self.cols);
        Matrix::from_fn(nr, nc, |i, j| self[(row0 + i, col0 + j)])
    }

    /// Check shapes are equal, producing a [`LinalgError`] otherwise.
    pub fn require_same_shape(&self, other: &Matrix, context: &'static str) -> Result<(), LinalgError> {
        if (self.rows, self.cols) == (other.rows, other.cols) {
            Ok(())
        } else {
            Err(LinalgError::ShapeMismatch { context })
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.6} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i + 7 * j) as f64 * 0.5);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn arithmetic() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::identity(2);
        let c = a.add(&b);
        assert_eq!(c[(0, 0)], 1.0);
        assert_eq!(c[(1, 1)], 3.0);
        assert_eq!(a.sub(&a).norm_fro(), 0.0);
        let mut d = a.clone();
        d.axpy(2.0, &b);
        assert_eq!(d[(0, 0)], 2.0);
        assert_eq!(d[(0, 1)], 1.0);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = m.matvec(&[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn trace_and_dot() {
        let a = Matrix::from_fn(3, 3, |i, j| if i == j { 2.0 } else { 1.0 });
        assert_eq!(a.trace(), 6.0);
        assert_eq!(Matrix::identity(3).dot(&a), 6.0);
    }

    #[test]
    fn symmetrize_removes_asymmetry() {
        let mut m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        assert!(m.asymmetry() > 0.0);
        m.symmetrize();
        assert_eq!(m.asymmetry(), 0.0);
    }

    #[test]
    fn block_roundtrip() {
        let m = Matrix::from_fn(5, 6, |i, j| (i * 6 + j) as f64);
        let b = m.block(1, 2, 3, 2);
        assert_eq!(b[(0, 0)], m[(1, 2)]);
        let mut z = Matrix::zeros(5, 6);
        z.set_block(1, 2, &b);
        assert_eq!(z[(3, 3)], m[(3, 3)]);
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }
}
