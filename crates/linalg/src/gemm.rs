//! General matrix multiplication: naive reference, cache-tiled, and
//! Rayon-parallel variants.
//!
//! The tiled kernel mirrors the threadblock-tile structure of a CUTLASS GEMM
//! (fixed `MC × NC × KC` tiles accumulated in registers); it is the numerical
//! executor behind the simulated tensor-core pipelines in `mako-kernels`.

use crate::Matrix;
use rayon::prelude::*;

/// Whether an operand participates transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the operand's transpose.
    Yes,
}

/// Tile edge for the cache-blocked kernel. 64×64 f64 tiles (32 KiB) fit L1/L2
/// comfortably on commodity CPUs; this deliberately matches the shared-memory
/// tile budget the device model assigns to threadblocks.
const TILE: usize = 64;

/// Naive triple-loop reference GEMM: `C = alpha * op(A) op(B) + beta * C`.
///
/// Kept simple and obviously correct; every other variant is tested against
/// it.
pub fn gemm_naive(
    alpha: f64,
    a: &Matrix,
    ta: Transpose,
    b: &Matrix,
    tb: Transpose,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, k1) = op_shape(a, ta);
    let (k2, n) = op_shape(b, tb);
    assert_eq!(k1, k2, "gemm inner dimension mismatch");
    assert_eq!((c.rows(), c.cols()), (m, n), "gemm output shape mismatch");
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for k in 0..k1 {
                s += get(a, ta, i, k) * get(b, tb, k, j);
            }
            c[(i, j)] = alpha * s + beta * c[(i, j)];
        }
    }
}

/// Cache-tiled GEMM, no transposes taken literally: operands are packed into
/// contiguous tiles first (the equivalent of CUTLASS's global→shared staging).
pub fn gemm_tiled(
    alpha: f64,
    a: &Matrix,
    ta: Transpose,
    b: &Matrix,
    tb: Transpose,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, kk) = op_shape(a, ta);
    let (k2, n) = op_shape(b, tb);
    assert_eq!(kk, k2, "gemm inner dimension mismatch");
    assert_eq!((c.rows(), c.cols()), (m, n), "gemm output shape mismatch");

    if beta != 1.0 {
        for x in c.as_mut_slice() {
            *x *= beta;
        }
    }

    let mut a_tile = vec![0.0f64; TILE * TILE];
    let mut b_tile = vec![0.0f64; TILE * TILE];

    let cols = c.cols();
    for i0 in (0..m).step_by(TILE) {
        let ib = TILE.min(m - i0);
        for k0 in (0..kk).step_by(TILE) {
            let kb = TILE.min(kk - k0);
            pack(a, ta, i0, k0, ib, kb, &mut a_tile);
            for j0 in (0..n).step_by(TILE) {
                let jb = TILE.min(n - j0);
                pack(b, tb, k0, j0, kb, jb, &mut b_tile);
                let cdata = c.as_mut_slice();
                for i in 0..ib {
                    let arow = &a_tile[i * TILE..i * TILE + kb];
                    let crow = &mut cdata[(i0 + i) * cols + j0..(i0 + i) * cols + j0 + jb];
                    for (k, &aik) in arow.iter().enumerate() {
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &b_tile[k * TILE..k * TILE + jb];
                        let aik = alpha * aik;
                        for (cij, &bkj) in crow.iter_mut().zip(brow) {
                            *cij += aik * bkj;
                        }
                    }
                }
            }
        }
    }
}

/// Rayon-parallel GEMM: rows of `C` are distributed across the thread pool,
/// each worker running the tiled kernel over its row band.
pub fn gemm_par(
    alpha: f64,
    a: &Matrix,
    ta: Transpose,
    b: &Matrix,
    tb: Transpose,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, kk) = op_shape(a, ta);
    let (k2, n) = op_shape(b, tb);
    assert_eq!(kk, k2, "gemm inner dimension mismatch");
    assert_eq!((c.rows(), c.cols()), (m, n), "gemm output shape mismatch");

    // Small problems are not worth the fork/join overhead.
    if m * n * kk < 64 * 64 * 64 {
        gemm_tiled(alpha, a, ta, b, tb, beta, c);
        return;
    }

    let cols = c.cols();
    c.as_mut_slice()
        .par_chunks_mut(TILE * cols)
        .enumerate()
        .for_each(|(band, c_band)| {
            let i0 = band * TILE;
            let ib = TILE.min(m - i0);
            let mut a_tile = vec![0.0f64; TILE * TILE];
            let mut b_tile = vec![0.0f64; TILE * TILE];
            if beta != 1.0 {
                for x in c_band.iter_mut() {
                    *x *= beta;
                }
            }
            for k0 in (0..kk).step_by(TILE) {
                let kb = TILE.min(kk - k0);
                pack(a, ta, i0, k0, ib, kb, &mut a_tile);
                for j0 in (0..n).step_by(TILE) {
                    let jb = TILE.min(n - j0);
                    pack(b, tb, k0, j0, kb, jb, &mut b_tile);
                    for i in 0..ib {
                        let arow = &a_tile[i * TILE..i * TILE + kb];
                        let crow = &mut c_band[i * cols + j0..i * cols + j0 + jb];
                        for (k, &aik) in arow.iter().enumerate() {
                            if aik == 0.0 {
                                continue;
                            }
                            let brow = &b_tile[k * TILE..k * TILE + jb];
                            let aik = alpha * aik;
                            for (cij, &bkj) in crow.iter_mut().zip(brow) {
                                *cij += aik * bkj;
                            }
                        }
                    }
                }
            }
        });
}

/// Convenience wrapper: `op(A) op(B)` as a fresh matrix via the tiled kernel.
pub fn gemm(a: &Matrix, ta: Transpose, b: &Matrix, tb: Transpose) -> Matrix {
    let (m, _) = op_shape(a, ta);
    let (_, n) = op_shape(b, tb);
    let mut c = Matrix::zeros(m, n);
    gemm_tiled(1.0, a, ta, b, tb, 0.0, &mut c);
    c
}

#[inline(always)]
fn op_shape(a: &Matrix, t: Transpose) -> (usize, usize) {
    match t {
        Transpose::No => (a.rows(), a.cols()),
        Transpose::Yes => (a.cols(), a.rows()),
    }
}

#[inline(always)]
fn get(a: &Matrix, t: Transpose, i: usize, j: usize) -> f64 {
    match t {
        Transpose::No => a[(i, j)],
        Transpose::Yes => a[(j, i)],
    }
}

/// Pack the logical block `[r0..r0+nr) × [c0..c0+nc)` of `op(a)` into a
/// TILE-strided contiguous buffer (zero-padded tail columns are left stale
/// but never read because loop bounds use the true block sizes).
fn pack(a: &Matrix, t: Transpose, r0: usize, c0: usize, nr: usize, nc: usize, buf: &mut [f64]) {
    match t {
        Transpose::No => {
            for i in 0..nr {
                let src = &a.row(r0 + i)[c0..c0 + nc];
                buf[i * TILE..i * TILE + nc].copy_from_slice(src);
            }
        }
        Transpose::Yes => {
            for i in 0..nr {
                for j in 0..nc {
                    buf[i * TILE + j] = a[(c0 + j, r0 + i)];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deterministic(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        let d = a.sub(b).max_abs();
        assert!(d < tol, "matrices differ by {d}");
    }

    #[test]
    fn tiled_matches_naive_all_transposes() {
        for &(m, k, n) in &[(3, 4, 5), (64, 64, 64), (65, 33, 127), (1, 100, 1)] {
            for &ta in &[Transpose::No, Transpose::Yes] {
                for &tb in &[Transpose::No, Transpose::Yes] {
                    let a = match ta {
                        Transpose::No => deterministic(m, k, 1),
                        Transpose::Yes => deterministic(k, m, 1),
                    };
                    let b = match tb {
                        Transpose::No => deterministic(k, n, 2),
                        Transpose::Yes => deterministic(n, k, 2),
                    };
                    let mut c1 = deterministic(m, n, 3);
                    let mut c2 = c1.clone();
                    gemm_naive(1.3, &a, ta, &b, tb, 0.7, &mut c1);
                    gemm_tiled(1.3, &a, ta, &b, tb, 0.7, &mut c2);
                    assert_close(&c1, &c2, 1e-10);
                }
            }
        }
    }

    #[test]
    fn par_matches_naive() {
        let a = deterministic(130, 90, 11);
        let b = deterministic(90, 70, 12);
        let mut c1 = Matrix::zeros(130, 70);
        let mut c2 = Matrix::zeros(130, 70);
        gemm_naive(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c1);
        gemm_par(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c2);
        assert_close(&c1, &c2, 1e-10);
    }

    #[test]
    fn identity_is_neutral() {
        let a = deterministic(17, 17, 5);
        let c = gemm(&a, Transpose::No, &Matrix::identity(17), Transpose::No);
        assert_close(&c, &a, 1e-14);
        let c2 = gemm(&Matrix::identity(17), Transpose::No, &a, Transpose::No);
        assert_close(&c2, &a, 1e-14);
    }

    #[test]
    fn transpose_identity_abt() {
        // (A Bᵀ)ᵀ = B Aᵀ
        let a = deterministic(12, 9, 21);
        let b = deterministic(15, 9, 22);
        let left = gemm(&a, Transpose::No, &b, Transpose::Yes).transpose();
        let right = gemm(&b, Transpose::No, &a, Transpose::Yes);
        assert_close(&left, &right, 1e-12);
    }

    #[test]
    fn beta_accumulation() {
        let a = deterministic(8, 8, 31);
        let b = deterministic(8, 8, 32);
        let mut c = Matrix::identity(8);
        // C = 0*AB + 2*I
        gemm_tiled(0.0, &a, Transpose::No, &b, Transpose::No, 2.0, &mut c);
        assert_close(&c, &Matrix::identity(8).scale(2.0), 1e-14);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 5);
        let mut c = Matrix::zeros(2, 5);
        gemm_tiled(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
    }
}
