//! General matrix multiplication: naive reference plus the packed-tile
//! microkernel engine ([`crate::microkernel`]).
//!
//! [`gemm_tiled`] and [`gemm_par`] are thin entries into the BLIS-style
//! 5-loop driver; `gemm_naive` stays as the obviously-correct accuracy
//! oracle every other variant is tested against. The historical scalar
//! tiled loops (including their data-dependent `aik == 0.0` skip, which
//! defeated vectorization and made FLOP cost input-dependent) are gone:
//! sparsity belongs to the screening layer, not the GEMM.

use crate::microkernel::{self, View, MC};
use crate::Matrix;
use rayon::prelude::*;

/// Whether an operand participates transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the operand's transpose.
    Yes,
}

/// Naive triple-loop reference GEMM: `C = alpha * op(A) op(B) + beta * C`.
///
/// Kept simple and obviously correct; every other variant is tested against
/// it.
pub fn gemm_naive(
    alpha: f64,
    a: &Matrix,
    ta: Transpose,
    b: &Matrix,
    tb: Transpose,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, k1) = op_shape(a, ta);
    let (k2, n) = op_shape(b, tb);
    assert_eq!(k1, k2, "gemm inner dimension mismatch");
    assert_eq!((c.rows(), c.cols()), (m, n), "gemm output shape mismatch");
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for k in 0..k1 {
                s += get(a, ta, i, k) * get(b, tb, k, j);
            }
            c[(i, j)] = alpha * s + beta * c[(i, j)];
        }
    }
}

/// Serial packed-tile GEMM: `C = alpha * op(A) op(B) + beta * C` through the
/// microkernel engine (AVX2 or generic, selected at startup — see
/// [`crate::microkernel::selected_kernel`]).
///
/// The name survives from the pre-engine cache-tiled kernel; all callers
/// (SCF, ERI transforms, the simulated tensor-core pipelines) route here.
pub fn gemm_tiled(
    alpha: f64,
    a: &Matrix,
    ta: Transpose,
    b: &Matrix,
    tb: Transpose,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, kk) = op_shape(a, ta);
    let (k2, n) = op_shape(b, tb);
    assert_eq!(kk, k2, "gemm inner dimension mismatch");
    assert_eq!((c.rows(), c.cols()), (m, n), "gemm output shape mismatch");

    if beta != 1.0 {
        for x in c.as_mut_slice() {
            *x *= beta;
        }
    }
    let av = View::of(a, ta);
    let bv = View::of(b, tb);
    microkernel::gemm_engine(alpha, av, bv, c.as_mut_slice(), n);
}

/// Rayon-parallel GEMM: rows of `C` are distributed across the thread pool
/// in `MC`-row bands, each worker running the packed engine over its band.
///
/// Bitwise identical to [`gemm_tiled`] at every thread count: each output
/// element's reduction sequence depends only on the fixed `KC` panel
/// schedule, never on which band (or thread) owns its row.
pub fn gemm_par(
    alpha: f64,
    a: &Matrix,
    ta: Transpose,
    b: &Matrix,
    tb: Transpose,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, kk) = op_shape(a, ta);
    let (k2, n) = op_shape(b, tb);
    assert_eq!(kk, k2, "gemm inner dimension mismatch");
    assert_eq!((c.rows(), c.cols()), (m, n), "gemm output shape mismatch");

    // Small problems are not worth the fork/join overhead.
    if m * n * kk < 64 * 64 * 64 {
        gemm_tiled(alpha, a, ta, b, tb, beta, c);
        return;
    }

    let av = View::of(a, ta);
    let bv = View::of(b, tb);
    c.as_mut_slice()
        .par_chunks_mut(MC * n)
        .enumerate()
        .for_each(|(band, c_band)| {
            let i0 = band * MC;
            let ib = MC.min(m - i0);
            if beta != 1.0 {
                for x in c_band.iter_mut() {
                    *x *= beta;
                }
            }
            microkernel::run_band_dispatch(&av, &bv, c_band, n, i0, ib, alpha, 1.0);
        });
}

/// Convenience wrapper: `op(A) op(B)` as a fresh matrix via the engine.
pub fn gemm(a: &Matrix, ta: Transpose, b: &Matrix, tb: Transpose) -> Matrix {
    let (m, _) = op_shape(a, ta);
    let (_, n) = op_shape(b, tb);
    let mut c = Matrix::zeros(m, n);
    gemm_tiled(1.0, a, ta, b, tb, 0.0, &mut c);
    c
}

#[inline(always)]
fn op_shape(a: &Matrix, t: Transpose) -> (usize, usize) {
    match t {
        Transpose::No => (a.rows(), a.cols()),
        Transpose::Yes => (a.cols(), a.rows()),
    }
}

#[inline(always)]
fn get(a: &Matrix, t: Transpose, i: usize, j: usize) -> f64 {
    match t {
        Transpose::No => a[(i, j)],
        Transpose::Yes => a[(j, i)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deterministic(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        let d = a.sub(b).max_abs();
        assert!(d < tol, "matrices differ by {d}");
    }

    #[test]
    fn tiled_matches_naive_all_transposes() {
        for &(m, k, n) in &[(3, 4, 5), (64, 64, 64), (65, 33, 127), (1, 100, 1)] {
            for &ta in &[Transpose::No, Transpose::Yes] {
                for &tb in &[Transpose::No, Transpose::Yes] {
                    let a = match ta {
                        Transpose::No => deterministic(m, k, 1),
                        Transpose::Yes => deterministic(k, m, 1),
                    };
                    let b = match tb {
                        Transpose::No => deterministic(k, n, 2),
                        Transpose::Yes => deterministic(n, k, 2),
                    };
                    let mut c1 = deterministic(m, n, 3);
                    let mut c2 = c1.clone();
                    gemm_naive(1.3, &a, ta, &b, tb, 0.7, &mut c1);
                    gemm_tiled(1.3, &a, ta, &b, tb, 0.7, &mut c2);
                    assert_close(&c1, &c2, 1e-10);
                }
            }
        }
    }

    #[test]
    fn par_matches_naive() {
        let a = deterministic(130, 90, 11);
        let b = deterministic(90, 70, 12);
        let mut c1 = Matrix::zeros(130, 70);
        let mut c2 = Matrix::zeros(130, 70);
        gemm_naive(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c1);
        gemm_par(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c2);
        assert_close(&c1, &c2, 1e-10);
    }

    #[test]
    fn par_matches_tiled_bitwise() {
        let a = deterministic(260, 100, 13);
        let b = deterministic(100, 80, 14);
        let mut c1 = deterministic(260, 80, 15);
        let mut c2 = c1.clone();
        gemm_tiled(0.9, &a, Transpose::No, &b, Transpose::No, 1.1, &mut c1);
        gemm_par(0.9, &a, Transpose::No, &b, Transpose::No, 1.1, &mut c2);
        assert_eq!(c1.as_slice(), c2.as_slice());
    }

    #[test]
    fn identity_is_neutral() {
        let a = deterministic(17, 17, 5);
        let c = gemm(&a, Transpose::No, &Matrix::identity(17), Transpose::No);
        assert_close(&c, &a, 1e-14);
        let c2 = gemm(&Matrix::identity(17), Transpose::No, &a, Transpose::No);
        assert_close(&c2, &a, 1e-14);
    }

    #[test]
    fn transpose_identity_abt() {
        // (A Bᵀ)ᵀ = B Aᵀ
        let a = deterministic(12, 9, 21);
        let b = deterministic(15, 9, 22);
        let left = gemm(&a, Transpose::No, &b, Transpose::Yes).transpose();
        let right = gemm(&b, Transpose::No, &a, Transpose::Yes);
        assert_close(&left, &right, 1e-12);
    }

    #[test]
    fn beta_accumulation() {
        let a = deterministic(8, 8, 31);
        let b = deterministic(8, 8, 32);
        let mut c = Matrix::identity(8);
        // C = 0*AB + 2*I
        gemm_tiled(0.0, &a, Transpose::No, &b, Transpose::No, 2.0, &mut c);
        assert_close(&c, &Matrix::identity(8).scale(2.0), 1e-14);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 5);
        let mut c = Matrix::zeros(2, 5);
        gemm_tiled(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
    }
}
