//! LOBPCG: locally optimal block preconditioned conjugate gradient
//! eigensolver for the lowest eigenpairs of a symmetric matrix.
//!
//! The paper points at iterative eigensolvers as the MatMul-amenable route
//! for Fock diagonalization at scale (§1, citing blocked LOBPCG): each
//! iteration is a handful of tall-skinny GEMMs plus a small dense
//! Rayleigh–Ritz problem — exactly the execution profile tensor cores like.
//! This implementation works on any symmetric operator given as a
//! matrix-vector block product, and is validated against the dense
//! Householder+QL solver.

use crate::{eigh, gemm, gemm_tiled, LinalgError, Matrix, Transpose};

/// Result of a LOBPCG run.
#[derive(Debug, Clone)]
pub struct LobpcgResult {
    /// The `k` lowest eigenvalues, ascending.
    pub values: Vec<f64>,
    /// Matching Ritz vectors in the columns.
    pub vectors: Matrix,
    /// Iterations executed.
    pub iterations: usize,
    /// Final residual norms per eigenpair.
    pub residuals: Vec<f64>,
}

/// Compute the `k` lowest eigenpairs of symmetric `a` to tolerance `tol`
/// (residual ‖Ax − λx‖ ≤ tol·‖A‖ per pair), with an iteration cap.
///
/// Block size is `k`; the search space stacks the current Ritz vectors,
/// the preconditioned residuals, and the previous direction (3k columns),
/// orthonormalized each sweep.
pub fn lobpcg(a: &Matrix, k: usize, tol: f64, max_iter: usize) -> Result<LobpcgResult, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::ShapeMismatch {
            context: "lobpcg requires a square matrix",
        });
    }
    let n = a.rows();
    if k == 0 || k > n {
        return Err(LinalgError::ShapeMismatch {
            context: "lobpcg block size must satisfy 1 ≤ k ≤ n",
        });
    }
    // Small problems: dense is both faster and simpler.
    if n <= 3 * k + 2 {
        let ed = eigh(a)?;
        return Ok(LobpcgResult {
            values: ed.values[..k].to_vec(),
            vectors: ed.vectors.block(0, 0, n, k),
            iterations: 0,
            residuals: vec![0.0; k],
        });
    }

    let a_norm = a.max_abs().max(1e-300);
    // Deterministic pseudo-random start block.
    let mut x = Matrix::from_fn(n, k, |i, j| {
        let s = (i * 2654435761 + j * 40503 + 12345) as f64;
        ((s * 0.61803398875).fract() - 0.5) + if i == j { 1.0 } else { 0.0 }
    });
    orthonormalize(&mut x);

    let mut p: Option<Matrix> = None;
    let mut values = vec![0.0f64; k];
    let mut residuals = vec![f64::INFINITY; k];

    for iter in 0..max_iter {
        let ax = gemm(a, Transpose::No, &x, Transpose::No);
        // Rayleigh quotients and residuals R = AX − X diag(λ).
        let xt_ax = gemm(&x, Transpose::Yes, &ax, Transpose::No);
        for j in 0..k {
            values[j] = xt_ax[(j, j)];
        }
        let mut r = ax.clone();
        for j in 0..k {
            for i in 0..n {
                r[(i, j)] -= values[j] * x[(i, j)];
            }
        }
        for j in 0..k {
            let mut s = 0.0;
            for i in 0..n {
                s += r[(i, j)] * r[(i, j)];
            }
            residuals[j] = s.sqrt();
        }
        if residuals.iter().all(|&res| res <= tol * a_norm) {
            let (vals, vecs) = rayleigh_ritz_sorted(a, &x, k)?;
            return Ok(LobpcgResult {
                values: vals,
                vectors: vecs,
                iterations: iter,
                residuals,
            });
        }

        // Search space S = [X, R, P], orthonormalized.
        let cols = k * if p.is_some() { 3 } else { 2 };
        let mut s = Matrix::zeros(n, cols);
        for j in 0..k {
            for i in 0..n {
                s[(i, j)] = x[(i, j)];
                s[(i, k + j)] = r[(i, j)];
            }
        }
        if let Some(pm) = &p {
            for j in 0..k {
                for i in 0..n {
                    s[(i, 2 * k + j)] = pm[(i, j)];
                }
            }
        }
        let kept = orthonormalize(&mut s);
        let s = if kept < s.cols() {
            s.block(0, 0, n, kept)
        } else {
            s
        };

        // Rayleigh–Ritz on the subspace.
        let as_ = gemm(a, Transpose::No, &s, Transpose::No);
        let h = gemm(&s, Transpose::Yes, &as_, Transpose::No);
        let ed = eigh(&h)?;
        // New X = S · C_k (lowest k Ritz vectors).
        let ck = ed.vectors.block(0, 0, s.cols(), k);
        let x_new = gemm(&s, Transpose::No, &ck, Transpose::No);
        // Direction P = X_new − X (classic LOBPCG update).
        let mut p_new = x_new.clone();
        p_new.axpy(-1.0, &x);
        p = Some(p_new);
        x = x_new;
        orthonormalize(&mut x);
    }

    Err(LinalgError::NoConvergence { index: 0 })
}

/// Final clean Rayleigh–Ritz of `a` within span(x), sorted ascending.
fn rayleigh_ritz_sorted(a: &Matrix, x: &Matrix, k: usize) -> Result<(Vec<f64>, Matrix), LinalgError> {
    let ax = gemm(a, Transpose::No, x, Transpose::No);
    let h = gemm(x, Transpose::Yes, &ax, Transpose::No);
    let ed = eigh(&h)?;
    let c = ed.vectors.block(0, 0, x.cols(), k);
    let mut v = Matrix::zeros(x.rows(), k);
    gemm_tiled(1.0, x, Transpose::No, &c, Transpose::No, 0.0, &mut v);
    Ok((ed.values[..k].to_vec(), v))
}

/// In-place modified Gram-Schmidt; returns the number of columns kept
/// (near-dependent columns are zeroed and pushed to the back conceptually —
/// callers truncate to the returned count).
fn orthonormalize(m: &mut Matrix) -> usize {
    let (n, cols) = (m.rows(), m.cols());
    let mut kept = 0usize;
    for j in 0..cols {
        // Orthogonalize column j against the kept prefix, twice for
        // stability.
        for _ in 0..2 {
            for q in 0..kept {
                let mut dot = 0.0;
                for i in 0..n {
                    dot += m[(i, q)] * m[(i, j)];
                }
                for i in 0..n {
                    let update = dot * m[(i, q)];
                    m[(i, j)] -= update;
                }
            }
        }
        let mut norm = 0.0;
        for i in 0..n {
            norm += m[(i, j)] * m[(i, j)];
        }
        let norm = norm.sqrt();
        if norm > 1e-10 {
            for i in 0..n {
                m[(i, j)] /= norm;
            }
            if j != kept {
                for i in 0..n {
                    let v = m[(i, j)];
                    m[(i, kept)] = v;
                    m[(i, j)] = 0.0;
                }
            }
            kept += 1;
        } else {
            for i in 0..n {
                m[(i, j)] = 0.0;
            }
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        m
    }

    #[test]
    fn matches_dense_solver_lowest_pairs() {
        for &(n, k) in &[(30usize, 3usize), (50, 5), (80, 4)] {
            let a = random_symmetric(n, n as u64 * 13 + 1);
            let dense = eigh(&a).unwrap();
            let res = lobpcg(&a, k, 1e-10, 500).unwrap();
            for j in 0..k {
                assert!(
                    (res.values[j] - dense.values[j]).abs() < 1e-7,
                    "n={n} k={k} j={j}: {} vs {}",
                    res.values[j],
                    dense.values[j]
                );
            }
        }
    }

    #[test]
    fn ritz_vectors_satisfy_eigen_equation() {
        let n = 40;
        let a = random_symmetric(n, 99);
        let res = lobpcg(&a, 3, 1e-10, 500).unwrap();
        for j in 0..3 {
            let col: Vec<f64> = (0..n).map(|i| res.vectors[(i, j)]).collect();
            let av = a.matvec(&col);
            let mut worst = 0.0f64;
            for i in 0..n {
                worst = worst.max((av[i] - res.values[j] * col[i]).abs());
            }
            assert!(worst < 1e-6 * (1.0 + a.max_abs()), "pair {j} residual {worst}");
        }
    }

    #[test]
    fn small_problems_fall_back_to_dense() {
        let a = random_symmetric(6, 5);
        let res = lobpcg(&a, 2, 1e-12, 100).unwrap();
        assert_eq!(res.iterations, 0);
        let dense = eigh(&a).unwrap();
        assert!((res.values[0] - dense.values[0]).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_arguments() {
        let a = random_symmetric(10, 3);
        assert!(lobpcg(&a, 0, 1e-8, 10).is_err());
        assert!(lobpcg(&a, 11, 1e-8, 10).is_err());
        assert!(lobpcg(&Matrix::zeros(3, 4), 1, 1e-8, 10).is_err());
    }

    #[test]
    fn diagonal_matrix_converges_fast() {
        let n = 64;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = i as f64 + 1.0;
        }
        let res = lobpcg(&a, 4, 1e-9, 500).unwrap();
        for (j, v) in res.values.iter().enumerate() {
            assert!((v - (j as f64 + 1.0)).abs() < 1e-6, "λ{j} = {v}");
        }
        assert!(res.iterations < 500);
    }
}
