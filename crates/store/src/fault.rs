//! The deterministic fault-injecting Vfs backend.
//!
//! [`FaultVfs`] is an in-memory filesystem that models exactly the disk
//! behaviors a crash-consistent store must survive, every one of them a
//! pure function of `(seed, operation index)` so a failing sweep point
//! replays bit-for-bit:
//!
//! * **crash points** — every mutating operation (write, append, sync,
//!   rename, remove, mkdir) has a global index; at the configured index the
//!   operation *partially applies* and the simulated process dies:
//!   [`VfsError::Crashed`] is returned, every later operation fails the
//!   same way, and un-synced page-cache data is resolved to a seeded
//!   surviving prefix — the torn-write outcome of a power cut.
//! * **short writes / ENOSPC** — a seeded fraction of writes land only a
//!   prefix of their bytes and fail with [`VfsError::NoSpace`] (or a
//!   generic short-write I/O error), without killing the process.
//! * **bit rot on read** — a seeded fraction of reads return the payload
//!   with one bit flipped, exercising every CRC validation path.
//!
//! ## Durability model
//!
//! Each file carries `data` (page cache) and `durable_len` (the prefix
//! known to be on stable storage). `sync` advances `durable_len` to the
//! full length. At a crash, file contents resolve to
//! `data[..durable_len]` plus a seeded prefix of the dirty tail — so an
//! un-synced write may survive whole, torn, or not at all, and the caller
//! can assume nothing it did not `fsync`. Renames and removes are treated
//! as applied once they return (the ext4-like model; the store's
//! fsync-then-rename helper syncs the parent directory anyway), except the
//! rename *at* the crash point itself, which survives by a seeded coin —
//! both outcomes of an interrupted rename appear across a sweep.

use crate::vfs::{Vfs, VfsError};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Seeded fault schedule of a [`FaultVfs`].
#[derive(Debug, Clone)]
pub struct FaultProfile {
    /// Seed of every injection decision.
    pub seed: u64,
    /// Mutating-operation index at which the simulated process crashes
    /// (`None` = never). The probe run of a sweep uses `None` and reads
    /// [`FaultVfs::ops`] to learn the domain.
    pub crash_at: Option<u64>,
    /// Probability a write/append lands only a seeded prefix and fails
    /// (alternating seeded coin: `NoSpace` or a short-write I/O error).
    pub write_fault_rate: f64,
    /// Probability a read returns the payload with one seeded bit flipped.
    pub bitrot_rate: f64,
}

impl FaultProfile {
    /// No faults at all — a pure in-memory filesystem.
    pub fn quiet() -> FaultProfile {
        FaultProfile {
            seed: 0,
            crash_at: None,
            write_fault_rate: 0.0,
            bitrot_rate: 0.0,
        }
    }

    /// Crash at exactly `op` (the sweep's workhorse).
    pub fn crash_at(seed: u64, op: u64) -> FaultProfile {
        FaultProfile {
            seed,
            crash_at: Some(op),
            write_fault_rate: 0.0,
            bitrot_rate: 0.0,
        }
    }
}

struct FileBuf {
    data: Vec<u8>,
    durable_len: usize,
}

struct FsState {
    files: BTreeMap<PathBuf, FileBuf>,
    dirs: BTreeSet<PathBuf>,
    /// Mutating operations issued so far (the crash-point domain).
    ops: u64,
    /// Read operations issued so far (the bit-rot stream index).
    reads: u64,
    crashed: bool,
}

/// The fault-injecting in-memory backend. See the module docs for the
/// fault model.
pub struct FaultVfs {
    profile: FaultProfile,
    state: Mutex<FsState>,
}

impl std::fmt::Debug for FaultVfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock();
        f.debug_struct("FaultVfs")
            .field("profile", &self.profile)
            .field("files", &s.files.len())
            .field("ops", &s.ops)
            .field("crashed", &s.crashed)
            .finish()
    }
}

/// SplitMix64 finalizer — the repo's standard deterministic mixer.
#[inline]
fn mix(h: u64, v: u64) -> u64 {
    let mut z = (h ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash onto `[0, 1)` via its top 53 bits.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultVfs {
    /// A fresh, empty filesystem with the given fault profile.
    pub fn new(profile: FaultProfile) -> FaultVfs {
        FaultVfs {
            profile,
            state: Mutex::new(FsState {
                files: BTreeMap::new(),
                dirs: BTreeSet::new(),
                ops: 0,
                reads: 0,
                crashed: false,
            }),
        }
    }

    /// A quiet (fault-free) in-memory filesystem.
    pub fn quiet() -> FaultVfs {
        FaultVfs::new(FaultProfile::quiet())
    }

    /// Mutating operations issued so far — after a probe run, the domain
    /// of crash points a sweep must cover.
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// Test/corruption hook: read a file's raw bytes without consuming a
    /// bit-rot draw.
    pub fn raw(&self, path: &Path) -> Option<Vec<u8>> {
        self.state.lock().files.get(path).map(|f| f.data.clone())
    }

    /// Test/corruption hook: XOR `mask` into byte `index` of a stored
    /// file — persistent on-media rot, as opposed to the seeded transient
    /// read rot.
    pub fn corrupt(&self, path: &Path, index: usize, mask: u8) -> bool {
        let mut s = self.state.lock();
        match s.files.get_mut(path) {
            Some(f) if index < f.data.len() => {
                f.data[index] ^= mask;
                true
            }
            _ => false,
        }
    }

    /// Test hook: truncate a stored file to `len` bytes in place.
    pub fn truncate(&self, path: &Path, len: usize) -> bool {
        let mut s = self.state.lock();
        match s.files.get_mut(path) {
            Some(f) => {
                f.data.truncate(len);
                f.durable_len = f.durable_len.min(len);
                true
            }
            None => false,
        }
    }

    /// Seeded draw for mutating op `op` with a salt separating decision
    /// kinds sharing an index.
    fn draw(&self, op: u64, salt: u64) -> u64 {
        mix(mix(self.profile.seed ^ 0x5354_4F52_4546_4C54, op), salt)
    }

    /// Count a mutating op; `Some(index)` means the crash fires *during*
    /// this op.
    fn next_op(&self, s: &mut FsState) -> Result<(u64, bool), VfsError> {
        if s.crashed {
            return Err(VfsError::Crashed);
        }
        let idx = s.ops;
        s.ops += 1;
        Ok((idx, self.profile.crash_at == Some(idx)))
    }

    /// Resolve the page cache at a crash: every file keeps its durable
    /// prefix plus a seeded prefix of the dirty tail.
    fn resolve_crash(&self, s: &mut FsState, at_op: u64) {
        for (path, f) in s.files.iter_mut() {
            if f.data.len() > f.durable_len {
                let dirty = f.data.len() - f.durable_len;
                let path_h = path
                    .as_os_str()
                    .as_encoded_bytes()
                    .iter()
                    .fold(0u64, |h, &b| mix(h, b as u64));
                let keep = (self.draw(at_op, path_h) % (dirty as u64 + 1)) as usize;
                f.data.truncate(f.durable_len + keep);
            }
            f.durable_len = f.data.len();
        }
        s.crashed = true;
        mako_trace::instant(
            "store",
            "crash",
            vec![mako_trace::field("op", at_op)],
        );
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> Result<Vec<u8>, VfsError> {
        let mut s = self.state.lock();
        if s.crashed {
            return Err(VfsError::Crashed);
        }
        let idx = s.reads;
        s.reads += 1;
        let mut bytes = match s.files.get(path) {
            Some(f) => f.data.clone(),
            None => return Err(VfsError::NotFound),
        };
        if self.profile.bitrot_rate > 0.0 && !bytes.is_empty() {
            let h = mix(mix(self.profile.seed ^ 0x4249_5452_4F54_5244, idx), 1);
            if unit(h) < self.profile.bitrot_rate {
                let bit = (mix(h, 2) % (bytes.len() as u64 * 8)) as usize;
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
        }
        Ok(bytes)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
        let mut s = self.state.lock();
        let (op, crash) = self.next_op(&mut s)?;
        // Truncate-then-write: the old content is gone the moment the op
        // starts (the adversarial overwrite model).
        let f = s.files.entry(path.to_path_buf()).or_insert(FileBuf {
            data: Vec::new(),
            durable_len: 0,
        });
        f.data.clear();
        f.durable_len = 0;
        if crash {
            let keep = (self.draw(op, 1) % (bytes.len() as u64 + 1)) as usize;
            f.data.extend_from_slice(&bytes[..keep]);
            self.resolve_crash(&mut s, op);
            return Err(VfsError::Crashed);
        }
        if self.profile.write_fault_rate > 0.0 {
            let h = self.draw(op, 3);
            if unit(h) < self.profile.write_fault_rate {
                let written = (mix(h, 4) % (bytes.len() as u64 + 1)) as usize;
                f.data.extend_from_slice(&bytes[..written]);
                return if mix(h, 5) & 1 == 0 {
                    Err(VfsError::NoSpace { written })
                } else {
                    Err(VfsError::Io(format!(
                        "short write: {written} of {} bytes",
                        bytes.len()
                    )))
                };
            }
        }
        f.data.extend_from_slice(bytes);
        Ok(())
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
        let mut s = self.state.lock();
        let (op, crash) = self.next_op(&mut s)?;
        let f = s.files.entry(path.to_path_buf()).or_insert(FileBuf {
            data: Vec::new(),
            durable_len: 0,
        });
        if crash {
            let keep = (self.draw(op, 1) % (bytes.len() as u64 + 1)) as usize;
            f.data.extend_from_slice(&bytes[..keep]);
            self.resolve_crash(&mut s, op);
            return Err(VfsError::Crashed);
        }
        if self.profile.write_fault_rate > 0.0 {
            let h = self.draw(op, 3);
            if unit(h) < self.profile.write_fault_rate {
                let written = (mix(h, 4) % (bytes.len() as u64 + 1)) as usize;
                f.data.extend_from_slice(&bytes[..written]);
                return if mix(h, 5) & 1 == 0 {
                    Err(VfsError::NoSpace { written })
                } else {
                    Err(VfsError::Io(format!(
                        "short write: {written} of {} bytes",
                        bytes.len()
                    )))
                };
            }
        }
        f.data.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self, path: &Path) -> Result<(), VfsError> {
        let mut s = self.state.lock();
        let (op, crash) = self.next_op(&mut s)?;
        if crash {
            // Coin: the sync may or may not have reached the platter
            // before the power cut.
            if self.draw(op, 1) & 1 == 0 {
                if let Some(f) = s.files.get_mut(path) {
                    f.durable_len = f.data.len();
                }
            }
            self.resolve_crash(&mut s, op);
            return Err(VfsError::Crashed);
        }
        match s.files.get_mut(path) {
            Some(f) => {
                f.durable_len = f.data.len();
                Ok(())
            }
            None => Err(VfsError::NotFound),
        }
    }

    fn sync_dir(&self, _dir: &Path) -> Result<(), VfsError> {
        let mut s = self.state.lock();
        let (op, crash) = self.next_op(&mut s)?;
        if crash {
            self.resolve_crash(&mut s, op);
            return Err(VfsError::Crashed);
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), VfsError> {
        let mut s = self.state.lock();
        let (op, crash) = self.next_op(&mut s)?;
        if crash {
            // Coin: an interrupted rename either committed or it did not —
            // the sweep sees both outcomes across crash points.
            if self.draw(op, 1) & 1 == 0 {
                if let Some(f) = s.files.remove(from) {
                    s.files.insert(to.to_path_buf(), f);
                }
            }
            self.resolve_crash(&mut s, op);
            return Err(VfsError::Crashed);
        }
        match s.files.remove(from) {
            Some(f) => {
                s.files.insert(to.to_path_buf(), f);
                Ok(())
            }
            None => Err(VfsError::NotFound),
        }
    }

    fn remove(&self, path: &Path) -> Result<(), VfsError> {
        let mut s = self.state.lock();
        let (op, crash) = self.next_op(&mut s)?;
        if crash {
            if self.draw(op, 1) & 1 == 0 {
                s.files.remove(path);
            }
            self.resolve_crash(&mut s, op);
            return Err(VfsError::Crashed);
        }
        match s.files.remove(path) {
            Some(_) => Ok(()),
            None => Err(VfsError::NotFound),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        let s = self.state.lock();
        !s.crashed && s.files.contains_key(path)
    }

    fn list(&self, dir: &Path) -> Result<Vec<PathBuf>, VfsError> {
        let s = self.state.lock();
        if s.crashed {
            return Err(VfsError::Crashed);
        }
        Ok(s.files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect())
    }

    fn create_dir_all(&self, dir: &Path) -> Result<(), VfsError> {
        let mut s = self.state.lock();
        let (op, crash) = self.next_op(&mut s)?;
        if crash {
            self.resolve_crash(&mut s, op);
            return Err(VfsError::Crashed);
        }
        s.dirs.insert(dir.to_path_buf());
        Ok(())
    }

    fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    fn recover_crash(&self) {
        // Contents were already resolved to their surviving prefixes when
        // the crash fired; the restart just starts accepting operations.
        self.state.lock().crashed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::write_durable;

    #[test]
    fn unsynced_data_may_tear_at_a_crash_synced_data_never_does() {
        let p = Path::new("/f.bin");
        // Crash at op 2 (the second write); op 0 = write, op 1 = sync.
        let vfs = FaultVfs::new(FaultProfile::crash_at(7, 2));
        vfs.write(p, b"durable!").unwrap();
        vfs.sync(p).unwrap();
        let err = vfs.write(Path::new("/g.bin"), b"lost-or-torn").unwrap_err();
        assert_eq!(err, VfsError::Crashed);
        assert!(vfs.crashed());
        assert_eq!(vfs.read(p), Err(VfsError::Crashed), "dead process reads nothing");
        vfs.recover_crash();
        assert_eq!(vfs.read(p).unwrap(), b"durable!", "synced file intact");
        let g = vfs.raw(Path::new("/g.bin")).unwrap_or_default();
        assert!(
            b"lost-or-torn".starts_with(&g[..]),
            "unsynced file survives only as a prefix, got {g:?}"
        );
    }

    #[test]
    fn crash_points_are_deterministic() {
        let outcome = |seed, at| {
            let vfs = FaultVfs::new(FaultProfile::crash_at(seed, at));
            let p = Path::new("/a");
            let mut log = Vec::new();
            for i in 0..6u8 {
                log.push(vfs.append(p, &[i; 10]).is_ok());
            }
            vfs.recover_crash();
            (log, vfs.raw(p).unwrap_or_default())
        };
        assert_eq!(outcome(3, 4), outcome(3, 4), "same seed+point, same world");
        assert_ne!(
            outcome(3, 1).1.len(),
            outcome(3, 5).1.len(),
            "different crash points leave different prefixes"
        );
    }

    #[test]
    fn write_faults_leave_partial_data_and_typed_errors() {
        let vfs = FaultVfs::new(FaultProfile {
            seed: 11,
            crash_at: None,
            write_fault_rate: 0.5,
            bitrot_rate: 0.0,
        });
        let mut failures = 0;
        for i in 0..64 {
            let p = PathBuf::from(format!("/f{i}"));
            match vfs.write(&p, &[0xAB; 100]) {
                Ok(()) => assert_eq!(vfs.raw(&p).unwrap().len(), 100),
                Err(VfsError::NoSpace { written }) => {
                    failures += 1;
                    assert!(written <= 100);
                    assert_eq!(vfs.raw(&p).unwrap().len(), written, "torn tail visible");
                }
                Err(VfsError::Io(msg)) => {
                    failures += 1;
                    assert!(msg.contains("short write"), "{msg}");
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(failures > 8, "a 50% rate must fire often over 64 draws");
    }

    #[test]
    fn bitrot_flips_exactly_one_bit_sometimes() {
        let vfs = FaultVfs::new(FaultProfile {
            seed: 5,
            crash_at: None,
            write_fault_rate: 0.0,
            bitrot_rate: 0.3,
        });
        let p = Path::new("/rot");
        vfs.write(p, &[0u8; 64]).unwrap();
        let mut rotted = 0;
        for _ in 0..50 {
            let bytes = vfs.read(p).unwrap();
            let flipped: u32 = bytes.iter().map(|b| b.count_ones()).sum();
            assert!(flipped <= 1, "at most one bit per read");
            rotted += (flipped == 1) as usize;
        }
        assert!(rotted > 2, "a 30% rate must rot some reads");
        assert!(rotted < 50, "and not all of them");
    }

    #[test]
    fn durable_write_protocol_survives_every_crash_point() {
        // Seed a v1 artifact (durably), then sweep a crash point through
        // every operation of the v2 save: the recovered file must be
        // exactly v1 or exactly v2, never torn.
        let path = Path::new("/a/ckpt.bin");
        let probe = FaultVfs::quiet();
        probe.create_dir_all(Path::new("/a")).unwrap();
        write_durable(&probe, path, b"version-one").unwrap();
        let before = probe.ops();
        write_durable(&probe, path, b"version-two-longer").unwrap();
        let domain = probe.ops() - before;
        assert!(domain >= 4, "write+sync+rename+dirsync at minimum");
        for k in 0..domain {
            let vfs = FaultVfs::new(FaultProfile::crash_at(k, before + k));
            vfs.create_dir_all(Path::new("/a")).unwrap();
            write_durable(&vfs, path, b"version-one").unwrap();
            let err = write_durable(&vfs, path, b"version-two-longer").unwrap_err();
            assert_eq!(err, VfsError::Crashed, "crash point {k}");
            vfs.recover_crash();
            let got = vfs.read(path).unwrap();
            assert!(
                got == b"version-one" || got == b"version-two-longer",
                "crash point {k} tore the destination: {got:?}"
            );
        }
    }
}
