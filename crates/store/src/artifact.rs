//! The persistent artifact store: a keyed blob store for expensive
//! derived state (screened shell pairs, tuned-kernel tables) that must
//! survive restarts but may *never* be trusted blindly.
//!
//! Every artifact file is
//!
//! ```text
//! [magic "MAKOART1": 8] [key: u64 LE] [len: u32 LE] [crc32(payload): u32 LE] [payload]
//! ```
//!
//! written with the fsync-then-rename discipline of
//! [`crate::write_durable`]. On load, magic, key, length, and CRC are all
//! checked; any mismatch — truncation, bit rot, a foreign file squatting on
//! the name — moves the file aside to `<name>.quarantine` (a rename, so the
//! evidence survives for post-mortems and never shadows the key again) and
//! reports a miss. The caller recomputes and overwrites; a corrupt artifact
//! is therefore an efficiency event, never a correctness event.

use crate::crc::crc32;
use crate::vfs::{write_durable, Vfs, VfsError};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"MAKOART1";

/// Why a stored artifact was rejected and quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactFault {
    /// File shorter than the fixed header.
    Truncated,
    /// Wrong magic — not an artifact file at all.
    BadMagic,
    /// Header key does not match the requested key.
    WrongKey,
    /// Payload shorter than the header's length field.
    ShortPayload,
    /// Payload fails its CRC — bit rot.
    Corrupt,
    /// The framing validated but the consumer could not decode the payload
    /// (stale or foreign schema) — reported via
    /// [`ArtifactStore::quarantine_undecodable`].
    Undecodable,
}

impl ArtifactFault {
    /// Stable label for trace events.
    pub fn label(&self) -> &'static str {
        match self {
            ArtifactFault::Truncated => "truncated",
            ArtifactFault::BadMagic => "bad_magic",
            ArtifactFault::WrongKey => "wrong_key",
            ArtifactFault::ShortPayload => "short_payload",
            ArtifactFault::Corrupt => "crc_mismatch",
            ArtifactFault::Undecodable => "undecodable",
        }
    }
}

/// A directory of validated, durably-written artifacts on a [`Vfs`].
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    vfs: Arc<dyn Vfs>,
    root: PathBuf,
    quarantined: Arc<AtomicUsize>,
    loaded: Arc<AtomicUsize>,
    stored: Arc<AtomicUsize>,
}

impl ArtifactStore {
    /// Open (creating the directory if needed) an artifact store rooted at
    /// `root`.
    pub fn open(vfs: Arc<dyn Vfs>, root: PathBuf) -> Result<ArtifactStore, VfsError> {
        vfs.create_dir_all(&root)?;
        Ok(ArtifactStore {
            vfs,
            root,
            quarantined: Arc::new(AtomicUsize::new(0)),
            loaded: Arc::new(AtomicUsize::new(0)),
            stored: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// File path of an artifact: `{kind}-{key:016x}.art`.
    pub fn path_for(&self, kind: &str, key: u64) -> PathBuf {
        self.root.join(format!("{kind}-{key:016x}.art"))
    }

    /// Artifacts moved aside after failing validation.
    pub fn quarantined(&self) -> usize {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Successful loads.
    pub fn loaded(&self) -> usize {
        self.loaded.load(Ordering::Relaxed)
    }

    /// Successful stores.
    pub fn stored(&self) -> usize {
        self.stored.load(Ordering::Relaxed)
    }

    /// Durably store `payload` under `(kind, key)`.
    pub fn store(&self, kind: &str, key: u64, payload: &[u8]) -> Result<(), VfsError> {
        let mut bytes = Vec::with_capacity(24 + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&key.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        write_durable(self.vfs.as_ref(), &self.path_for(kind, key), &bytes)?;
        self.stored.fetch_add(1, Ordering::Relaxed);
        mako_trace::instant(
            "store",
            "artifact",
            vec![
                mako_trace::field("op", "store".to_string()),
                mako_trace::field("kind", kind.to_string()),
            ],
        );
        Ok(())
    }

    /// Load and validate the artifact under `(kind, key)`.
    ///
    /// Returns `Ok(None)` on a plain miss *and* after quarantining an
    /// invalid file — from the caller's view both are "recompute". Only a
    /// live crash surfaces as an error.
    pub fn load(&self, kind: &str, key: u64) -> Result<Option<Vec<u8>>, VfsError> {
        let path = self.path_for(kind, key);
        let bytes = match self.vfs.read(&path) {
            Ok(b) => b,
            Err(VfsError::NotFound) => return Ok(None),
            Err(VfsError::Crashed) => return Err(VfsError::Crashed),
            // A read-level I/O error is treated like a miss: recompute.
            Err(_) => return Ok(None),
        };
        match validate(&bytes, key) {
            Ok(payload) => {
                self.loaded.fetch_add(1, Ordering::Relaxed);
                mako_trace::instant(
                    "store",
                    "artifact",
                    vec![
                        mako_trace::field("op", "hit".to_string()),
                        mako_trace::field("kind", kind.to_string()),
                    ],
                );
                Ok(Some(payload.to_vec()))
            }
            Err(fault) => {
                self.quarantine(&path, kind, fault)?;
                Ok(None)
            }
        }
    }

    /// Quarantine `(kind, key)` at the caller's request: the framing
    /// validated (magic, key, CRC) but the consumer could not decode the
    /// payload — a stale or foreign schema. Same discipline as an internal
    /// validation failure: move the file aside, count it, trace it.
    pub fn quarantine_undecodable(&self, kind: &str, key: u64) -> Result<(), VfsError> {
        let path = self.path_for(kind, key);
        self.quarantine(&path, kind, ArtifactFault::Undecodable)
    }

    /// Move a failed artifact aside so it never shadows its key again.
    fn quarantine(&self, path: &Path, kind: &str, fault: ArtifactFault) -> Result<(), VfsError> {
        let mut name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        name.push(".quarantine");
        let aside = path.with_file_name(name);
        match self.vfs.rename(path, &aside) {
            Ok(()) | Err(VfsError::NotFound) => {}
            Err(VfsError::Crashed) => return Err(VfsError::Crashed),
            // If the rename itself fails, fall back to removal: shadowing
            // the key with a corrupt file is the one unacceptable outcome.
            Err(_) => {
                let _ = self.vfs.remove(path);
            }
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        mako_trace::instant(
            "store",
            "quarantine",
            vec![
                mako_trace::field("kind", kind.to_string()),
                mako_trace::field("fault", fault.label().to_string()),
            ],
        );
        Ok(())
    }
}

/// Validate raw artifact bytes against the expected key; returns the
/// payload slice on success.
pub fn validate(bytes: &[u8], key: u64) -> Result<&[u8], ArtifactFault> {
    if bytes.len() < 24 {
        return Err(ArtifactFault::Truncated);
    }
    if &bytes[..8] != MAGIC {
        return Err(ArtifactFault::BadMagic);
    }
    let stored_key = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if stored_key != key {
        return Err(ArtifactFault::WrongKey);
    }
    let len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    if bytes.len() < 24 + len {
        return Err(ArtifactFault::ShortPayload);
    }
    let payload = &bytes[24..24 + len];
    if crc32(payload) != crc {
        return Err(ArtifactFault::Corrupt);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultVfs;

    fn fresh() -> (Arc<FaultVfs>, ArtifactStore) {
        let vfs = Arc::new(FaultVfs::quiet());
        let store =
            ArtifactStore::open(vfs.clone(), PathBuf::from("/art")).expect("open");
        (vfs, store)
    }

    #[test]
    fn roundtrip_and_miss() {
        let (_vfs, store) = fresh();
        assert_eq!(store.load("screen", 42).unwrap(), None);
        store.store("screen", 42, b"payload-bytes").unwrap();
        assert_eq!(store.load("screen", 42).unwrap(), Some(b"payload-bytes".to_vec()));
        assert_eq!(store.loaded(), 1);
        assert_eq!(store.quarantined(), 0);
    }

    #[test]
    fn every_corruption_mode_quarantines_and_reports_a_miss() {
        let (vfs, store) = fresh();
        let key = 0xDEAD_BEEFu64;
        let payload: Vec<u8> = (0..200u8).collect();
        let path = store.path_for("screen", key);

        // Bit rot in the payload.
        store.store("screen", key, &payload).unwrap();
        assert!(vfs.corrupt(&path, 24 + 100, 0x04));
        assert_eq!(store.load("screen", key).unwrap(), None, "rot must not be consumed");
        assert!(!vfs.exists(&path), "rotted file moved aside");
        assert!(
            vfs.raw(&path.with_file_name("screen-00000000deadbeef.art.quarantine"))
                .is_some(),
            "evidence preserved"
        );

        // Truncation inside the payload.
        store.store("screen", key, &payload).unwrap();
        assert!(vfs.truncate(&path, 24 + 50));
        assert_eq!(store.load("screen", key).unwrap(), None);

        // Truncation inside the header.
        store.store("screen", key, &payload).unwrap();
        assert!(vfs.truncate(&path, 10));
        assert_eq!(store.load("screen", key).unwrap(), None);

        // Foreign file squatting on the name.
        vfs.write(&path, b"not an artifact at all").unwrap();
        assert_eq!(store.load("screen", key).unwrap(), None);

        // Wrong key (a file written for another key copied over).
        store.store("screen", key, &payload).unwrap();
        assert!(vfs.corrupt(&path, 8, 0xFF), "mangle the stored key field");
        assert_eq!(store.load("screen", key).unwrap(), None);

        assert_eq!(store.quarantined(), 5);

        // After each quarantine, a store+load works again.
        store.store("screen", key, &payload).unwrap();
        assert_eq!(store.load("screen", key).unwrap(), Some(payload));
    }

    #[test]
    fn validate_covers_every_fault_variant() {
        let (vfs, store) = fresh();
        store.store("k", 7, b"abc").unwrap();
        let good = vfs.raw(&store.path_for("k", 7)).unwrap();
        assert_eq!(validate(&good, 7).unwrap(), b"abc");
        assert_eq!(validate(&good[..20], 7), Err(ArtifactFault::Truncated));
        assert_eq!(validate(&good, 8), Err(ArtifactFault::WrongKey));
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 1;
        assert_eq!(validate(&bad_magic, 7), Err(ArtifactFault::BadMagic));
        let mut rot = good.clone();
        *rot.last_mut().unwrap() ^= 0x80;
        assert_eq!(validate(&rot, 7), Err(ArtifactFault::Corrupt));
        assert_eq!(validate(&good[..25], 7), Err(ArtifactFault::ShortPayload));
    }
}
