//! mako-store — the crash-consistent storage layer under the serving
//! stack.
//!
//! Everything the server persists (SCF checkpoints, the write-ahead job
//! journal, cached screening/tuning artifacts) flows through the [`Vfs`]
//! trait, with two backends:
//!
//! * [`RealVfs`] — `std::fs`, with the fsync-then-rename discipline in
//!   [`write_durable`] for atomic replacement.
//! * [`FaultVfs`] — a deterministic, seeded in-memory filesystem that
//!   injects crash points at every mutating operation, short writes,
//!   ENOSPC, and bit rot on read. Because every fault is a pure function
//!   of `(seed, op index)`, the durability bench can *sweep the crash
//!   point across every syscall of a serve* and replay any failure
//!   bit-for-bit.
//!
//! On top of the trait sit the CRC-framed append-only [`records`] format
//! (journals tolerate torn tails, detect bit rot) and the keyed
//! [`ArtifactStore`] (validate-on-read, quarantine-on-corruption).
//!
//! The crash-consistency contract, pinned by `durability_bench` and the
//! recovery proptests, is: after a crash at *any* injected point, recovery
//! reconstructs the serve and every completed job's numerics are bitwise
//! identical to an uninterrupted run. See DESIGN.md §17.
#![deny(rust_2018_idioms)]

pub mod artifact;
pub mod crc;
pub mod fault;
pub mod records;
pub mod vfs;

pub use artifact::{ArtifactFault, ArtifactStore};
pub use crc::crc32;
pub use fault::{FaultProfile, FaultVfs};
pub use records::{frame, read_all, read_all_framed, Tail, MAX_RECORD_LEN};
pub use vfs::{tmp_path, write_durable, RealVfs, Vfs, VfsError};
