//! CRC-framed append-only record format — the wire format of the job
//! journal and any other log the store keeps.
//!
//! Each record is framed as
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! and appended to the file. The reader walks frames from the front and
//! stops at the first invalid one, returning every record before it plus a
//! [`Tail`] classification:
//!
//! * [`Tail::Clean`] — the file ends exactly on a frame boundary.
//! * [`Tail::Torn`] — the trailing frame is incomplete (fewer bytes than
//!   its header promises, or a partial header). This is the *expected*
//!   result of a crash mid-append and is not an error: append-only logs
//!   have prefix semantics, and a torn tail is simply the record that never
//!   committed.
//! * [`Tail::Corrupt`] — a full-length frame whose payload fails its CRC,
//!   or a length field too large to be real. Bit rot, not a crash; callers
//!   should quarantine the file rather than silently truncate it.
//!
//! Because every reader stops at the first bad frame, the observable
//! content of a journal is always a *prefix* of the records appended — the
//! property the recovery proptest pins.

use crate::crc::crc32;

/// Hard sanity bound on a single record (16 MiB). A length field above
/// this is treated as corruption rather than attempting a huge allocation.
pub const MAX_RECORD_LEN: u32 = 16 << 20;

/// How the record stream ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tail {
    /// Ended exactly on a frame boundary.
    Clean,
    /// Trailing bytes form an incomplete frame — a crash mid-append.
    Torn,
    /// A complete frame failed its CRC (or declared an absurd length) —
    /// bit rot or foreign bytes, not a torn append.
    Corrupt,
}

/// Frame `payload` into `[len][crc][payload]` bytes ready to append.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decode a record stream: every valid record up to the first bad frame,
/// plus how the stream ended.
pub fn read_all(bytes: &[u8]) -> (Vec<Vec<u8>>, Tail) {
    let (records, tail, _) = read_all_framed(bytes);
    (records, tail)
}

/// [`read_all`] plus the byte length of the valid prefix — everything past
/// it is the torn or corrupt tail. A writer resuming an interrupted log
/// MUST truncate to this length first: appending committed records after
/// garbage makes them unreachable to every future reader.
pub fn read_all_framed(bytes: &[u8]) -> (Vec<Vec<u8>>, Tail, usize) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        let rest = &bytes[at..];
        if rest.len() < 8 {
            return (records, Tail::Torn, at);
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_RECORD_LEN {
            return (records, Tail::Corrupt, at);
        }
        let len = len as usize;
        if rest.len() < 8 + len {
            return (records, Tail::Torn, at);
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != crc {
            return (records, Tail::Corrupt, at);
        }
        records.push(payload.to_vec());
        at += 8 + len;
    }
    (records, Tail::Clean, at)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal(payloads: &[&[u8]]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for p in payloads {
            bytes.extend_from_slice(&frame(p));
        }
        bytes
    }

    #[test]
    fn roundtrip_clean() {
        let bytes = journal(&[b"alpha", b"", b"gamma-longer-record"]);
        let (records, tail) = read_all(&bytes);
        assert_eq!(tail, Tail::Clean);
        assert_eq!(records, vec![b"alpha".to_vec(), vec![], b"gamma-longer-record".to_vec()]);
    }

    #[test]
    fn every_truncation_point_yields_a_prefix() {
        let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 3 + i as usize * 7]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let bytes = journal(&refs);
        for cut in 0..bytes.len() {
            let (records, tail) = read_all(&bytes[..cut]);
            assert!(records.len() <= payloads.len());
            assert_eq!(
                records,
                payloads[..records.len()].to_vec(),
                "cut at {cut} must yield an exact record prefix"
            );
            if cut == 0 {
                assert_eq!(tail, Tail::Clean);
            } else {
                // Any non-boundary cut is Torn; boundary cuts are Clean.
                let boundary = payloads[..records.len()]
                    .iter()
                    .map(|p| 8 + p.len())
                    .sum::<usize>()
                    == cut;
                assert_eq!(tail, if boundary { Tail::Clean } else { Tail::Torn });
            }
        }
    }

    #[test]
    fn bit_rot_is_corrupt_not_torn() {
        let bytes = journal(&[b"first", b"second", b"third"]);
        // Flip one payload bit of the middle record.
        let mut rotted = bytes.clone();
        let mid_payload_at = (8 + 5) + 8; // after first frame, past second header
        rotted[mid_payload_at] ^= 0x10;
        let (records, tail) = read_all(&rotted);
        assert_eq!(tail, Tail::Corrupt);
        assert_eq!(records, vec![b"first".to_vec()], "stops before the rot");
    }

    #[test]
    fn absurd_length_is_corrupt() {
        let mut bytes = journal(&[b"ok"]);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        let (records, tail) = read_all(&bytes);
        assert_eq!(records.len(), 1);
        assert_eq!(tail, Tail::Corrupt);
    }
}
