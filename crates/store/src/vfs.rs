//! The `Vfs` abstraction: every byte the serving stack persists flows
//! through this trait, so the *same* durability code runs against the real
//! filesystem in production and against the seeded fault injector
//! ([`crate::FaultVfs`]) in the crash-point sweep. Correctness under crash
//! is a property of the calling discipline (journal before apply, fsync
//! before rename), not of which backend happens to be underneath.
//!
//! The operation set is deliberately syscall-shaped — write, append, sync,
//! rename, remove — because those are exactly the points a crash can land
//! between. A coarser API ("save this blob atomically") would hide the
//! crash points the fault model needs to enumerate.

use std::path::{Path, PathBuf};

/// Typed failure of a Vfs operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// Underlying I/O failure (message kept as a string so the error stays
    /// `Clone`/`PartialEq` like the rest of the workspace's taxonomies).
    Io(String),
    /// The device ran out of space after `written` bytes of the request
    /// landed — the classic short-write: callers must assume a torn tail.
    NoSpace {
        /// Bytes that made it to the (page cache of the) file.
        written: usize,
    },
    /// The path does not exist.
    NotFound,
    /// The injected crash point fired: the simulated process is dead and
    /// every subsequent operation fails until
    /// [`Vfs::recover_crash`] models the restart.
    Crashed,
}

impl std::fmt::Display for VfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VfsError::Io(msg) => write!(f, "vfs I/O error: {msg}"),
            VfsError::NoSpace { written } => {
                write!(f, "no space left on device ({written} bytes written)")
            }
            VfsError::NotFound => write!(f, "no such file"),
            VfsError::Crashed => write!(f, "simulated crash point fired"),
        }
    }
}

impl std::error::Error for VfsError {}

impl From<std::io::Error> for VfsError {
    fn from(e: std::io::Error) -> VfsError {
        match e.kind() {
            std::io::ErrorKind::NotFound => VfsError::NotFound,
            _ => VfsError::Io(e.to_string()),
        }
    }
}

/// File-system operations the storage layer is allowed to perform.
///
/// Implementations must be `Send + Sync`: the serving simulation issues all
/// I/O from one thread, but the caches that sit on top are shared.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Read a whole file.
    fn read(&self, path: &Path) -> Result<Vec<u8>, VfsError>;
    /// Create-or-truncate `path` and write `bytes`. **Not durable** until
    /// [`Vfs::sync`] — a crash may tear or drop the data.
    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError>;
    /// Append `bytes` to `path` (creating it if absent). Not durable until
    /// synced; a crash may keep only a prefix of the appended region.
    fn append(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError>;
    /// `fsync` the file: everything written so far survives a crash.
    fn sync(&self, path: &Path) -> Result<(), VfsError>;
    /// Best-effort `fsync` of a directory (makes renames/creates durable on
    /// backends that need it; advisory elsewhere).
    fn sync_dir(&self, dir: &Path) -> Result<(), VfsError>;
    /// Atomically rename `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> Result<(), VfsError>;
    /// Remove a file.
    fn remove(&self, path: &Path) -> Result<(), VfsError>;
    /// Whether a file exists.
    fn exists(&self, path: &Path) -> bool;
    /// Files directly inside `dir` (no recursion), sorted for determinism.
    fn list(&self, dir: &Path) -> Result<Vec<PathBuf>, VfsError>;
    /// Create a directory and all parents.
    fn create_dir_all(&self, dir: &Path) -> Result<(), VfsError>;
    /// Whether an injected crash point has fired. The real backend never
    /// crashes *observably* (a real crash takes the process with it); the
    /// fault backend reports `true` from the crash point until
    /// [`Vfs::recover_crash`].
    fn crashed(&self) -> bool {
        false
    }
    /// Model the post-crash restart: drop everything that was not durable
    /// (un-synced page cache) and accept operations again. No-op on the
    /// real backend, where a restart is a new process.
    fn recover_crash(&self) {}
}

/// The production backend: a thin veneer over `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn read(&self, path: &Path) -> Result<Vec<u8>, VfsError> {
        Ok(std::fs::read(path)?)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
        Ok(std::fs::write(path, bytes)?)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(f.write_all(bytes)?)
    }

    fn sync(&self, path: &Path) -> Result<(), VfsError> {
        let f = std::fs::OpenOptions::new().read(true).open(path)?;
        Ok(f.sync_all()?)
    }

    fn sync_dir(&self, dir: &Path) -> Result<(), VfsError> {
        // Advisory: some filesystems refuse to open directories for sync.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), VfsError> {
        Ok(std::fs::rename(from, to)?)
    }

    fn remove(&self, path: &Path) -> Result<(), VfsError> {
        Ok(std::fs::remove_file(path)?)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn list(&self, dir: &Path) -> Result<Vec<PathBuf>, VfsError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    fn create_dir_all(&self, dir: &Path) -> Result<(), VfsError> {
        Ok(std::fs::create_dir_all(dir)?)
    }
}

/// The sibling temp path of the fsync-then-rename protocol. A *sibling*
/// (same directory) so the final rename never crosses a filesystem.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Write `bytes` to `path` durably and atomically: sibling temp file,
/// `fsync`, atomic rename, best-effort directory sync — the discipline
/// extracted from `ScfCheckpoint::save`, now shared by every artifact the
/// stack persists.
///
/// A crash at any step leaves either the previous file or the complete new
/// one, never a torn hybrid. Two leak guards close the gaps the old
/// implementation had: a stale temp file from a *previous* failed attempt
/// is removed up front, and the temp file of *this* attempt is removed on
/// every error path, so a persistent failure cannot litter the directory.
pub fn write_durable(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
    let tmp = tmp_path(path);
    if vfs.exists(&tmp) {
        // A previous attempt died between creating and renaming its temp
        // file; it is garbage by construction (never fsync'd or already
        // superseded) and must not accumulate.
        let _ = vfs.remove(&tmp);
    }
    let attempt = (|| {
        vfs.write(&tmp, bytes)?;
        vfs.sync(&tmp)?;
        vfs.rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                vfs.sync_dir(dir)?;
            }
        }
        Ok(())
    })();
    if attempt.is_err() {
        // Error-path cleanup. After a *crash* the temp file is on-disk
        // state the next save's up-front sweep handles instead (the
        // simulated process is dead; it cannot clean anything).
        let _ = vfs.remove(&tmp);
    }
    attempt
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mako-store-vfs-tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn real_vfs_roundtrip_append_list() {
        let dir = scratch("roundtrip");
        let vfs = RealVfs;
        let a = dir.join("a.bin");
        vfs.write(&a, b"hello").expect("write");
        vfs.append(&a, b" world").expect("append");
        vfs.sync(&a).expect("sync");
        assert_eq!(vfs.read(&a).expect("read"), b"hello world");
        assert!(vfs.exists(&a));
        assert_eq!(vfs.read(&dir.join("missing")), Err(VfsError::NotFound));
        let listed = vfs.list(&dir).expect("list");
        assert_eq!(listed, vec![a.clone()]);
        vfs.remove(&a).expect("remove");
        assert!(!vfs.exists(&a));
    }

    #[test]
    fn write_durable_replaces_atomically_and_leaves_no_tmp() {
        let dir = scratch("durable");
        let vfs = RealVfs;
        let path = dir.join("artifact.bin");
        write_durable(&vfs, &path, b"v1").expect("first save");
        write_durable(&vfs, &path, b"v2-longer").expect("second save");
        assert_eq!(vfs.read(&path).expect("read"), b"v2-longer");
        assert!(!vfs.exists(&tmp_path(&path)), "no temp residue after success");
    }

    #[test]
    fn write_durable_sweeps_a_stale_tmp_from_a_dead_attempt() {
        let dir = scratch("stale");
        let vfs = RealVfs;
        let path = dir.join("artifact.bin");
        // A previous process died between write and rename.
        vfs.write(&tmp_path(&path), b"torn garbage").expect("plant stale tmp");
        write_durable(&vfs, &path, b"good").expect("save");
        assert_eq!(vfs.read(&path).expect("read"), b"good");
        assert!(!vfs.exists(&tmp_path(&path)), "stale tmp swept");
    }

    #[test]
    fn write_durable_cleans_tmp_on_the_error_path() {
        let dir = scratch("errpath");
        let vfs = RealVfs;
        // The destination's parent exists but renaming over a *directory*
        // fails — a reliable error injection on the real backend.
        let path = dir.join("occupied");
        std::fs::create_dir(&path).expect("occupy destination with a dir");
        let err = write_durable(&vfs, &path, b"data");
        assert!(err.is_err(), "rename over a directory must fail");
        assert!(
            !vfs.exists(&tmp_path(&path)),
            "failed attempt must not leak its temp file"
        );
    }
}
