//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the payload
//! integrity check of every on-disk artifact in the store layer.
//!
//! Fingerprints (content hashes of the *inputs*) catch "wrong file";
//! they cannot catch "right file, rotted bits": a cosmic-ray flip in a
//! stored density matrix changes no fingerprint field yet silently perturbs
//! the numerics on resume. Every framed record and every checkpoint payload
//! therefore carries a CRC-32 over its bytes, checked on every read.
//! Table-driven, std-only, byte-at-a-time — integrity checking is nowhere
//! near the hot path (saves happen at iteration boundaries).

/// The reflected CRC-32 lookup table, built at first use.
fn table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// CRC-32 of `bytes` (IEEE: init `!0`, final xor `!0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = !0u32;
    for &b in bytes {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn any_single_bit_flip_changes_the_crc() {
        let data: Vec<u8> = (0..=255u8).collect();
        let clean = crc32(&data);
        for byte in (0..data.len()).step_by(17) {
            for bit in 0..8 {
                let mut rotted = data.clone();
                rotted[byte] ^= 1 << bit;
                assert_ne!(crc32(&rotted), clean, "flip at byte {byte} bit {bit} undetected");
            }
        }
    }
}
